//! `servebench` — an open-loop load generator for `prdnn-serve`.
//!
//! Starts an in-process server on an ephemeral port (or targets an
//! external one with `--addr`), then drives it with open-loop arrivals:
//! each client thread follows a fixed schedule of send times and measures
//! latency from the *scheduled* arrival, so server-side queueing shows up
//! in the tail instead of silently throttling the offered load (the
//! coordinated-omission-free methodology).
//!
//! Three workload mixes run by default, mirroring the serving layer's
//! request planes:
//!
//! * `eval_heavy` — 90% batched `eval`, 10% `lin_regions`, against one
//!   model version (the batcher's coalescing sweet spot).  It runs
//!   *twice*: once with span tracing at its most aggressive (`slow_ms`
//!   = 1, so nearly every request is promoted to the slow-trace log)
//!   and once with tracing off (`slow_ms` = 0), and the report prices
//!   the telemetry overhead as the difference in eval p50;
//! * `repair_heavy` — 60% `repair` submissions (each publishing a new
//!   version of a small model through the job queue) interleaved with 40%
//!   `eval` on `@latest`, exercising version churn under read traffic;
//! * `repair_heavy_durable` — the same mix against a server with a
//!   `--store-dir` write-ahead log, so every publish pays an fsync; the
//!   report adds a `durability` block (WAL/snapshot counters plus a
//!   measured cold-start `recovery_ms` from a fresh server on the same
//!   directory).
//!
//! Every mix's teardown scrapes the `metrics` endpoint and runs a full
//! Prometheus exposition lint over it: every line must parse, every
//! sample family must carry `# HELP` and `# TYPE`, counters must wear
//! the `_total` suffix and be integral, and histogram series must be
//! internally consistent (cumulative buckets monotone, `+Inf` equal to
//! `_count`, `_sum` present).  On quiesced in-process servers the lint
//! also cross-checks histogram counts against the server's own request
//! counters (e.g. `prdnn_request_seconds_count{kind="eval"}` must equal
//! `prdnn_eval_requests_total` exactly).  The per-mix report gains:
//!
//! * a `client_vs_server` block comparing send-measured client-side
//!   eval latency against the server's own residence histogram — the
//!   run fails if the server claims a larger median than clients saw;
//! * a `stages` block with count/mean/p50/p99 per instrumented stage
//!   (batcher queue wait, batch execution, gulp size, job queue wait,
//!   LP solve, WAL fsync, cache hit/miss service);
//! * `host_cores` and a `server` block (scrape-derived build version
//!   and uptime) stamping where and on what the numbers were taken.
//!
//! An opt-in `--mix cached` workload prices the per-version result
//! cache: a **cold** phase sends every request with a unique payload
//! (all misses), then a **hot** phase draws from a small shared payload
//! pool (all hits after each entry's first fill).  The phases run closed
//! loop — latency is measured from the send, not a schedule — because
//! the quantity of interest is the cost of the hit path itself, not
//! queueing.  The report compares hit vs miss p50/p90/p99 and computes
//! the hot-phase hit rate from the server's cache counters; the run
//! fails if that rate drops below 90% or a cache hit is not cheaper
//! than a miss at the median.
//!
//! A further opt-in mix measures **availability under wire chaos**:
//! `--mix chaos` runs an eval workload through a [`ChaosProxy`] across a
//! sweep of fault regimes (fault-free baseline, then delay, corrupt,
//! drop, sever, and everything at once), with every client wrapped in a
//! [`RetryingClient`].  Its report is per regime: success rate, retry /
//! reconnect / give-up counts, server-side sheds, and p50/p99 latency
//! *including* retries.
//!
//! Output is a JSON report (stdout, and `--out FILE`) with achieved
//! throughput and latency percentiles per mix, following the repo's
//! `BENCH_*.json` conventions.  `--trace-out FILE` additionally writes
//! the traced eval run's slow-request span chains (the server's `trace`
//! response) as a standalone JSON artifact.
//!
//! ```text
//! servebench [--secs N] [--rate RPS] [--clients N] [--threads N]
//!            [--mix eval|repair|durable|both|cached|chaos] [--addr HOST:PORT]
//!            [--store-dir DIR] [--out FILE] [--trace-out FILE]
//! ```
//!
//! `--store-dir` names the durable mix's log directory (default: a
//! scratch directory under the system tempdir, removed afterwards).  With
//! an external `--addr` the durable mix is skipped: durability lives in
//! the target server's own configuration.

use prdnn_core::{OutputPolytope, PointSpec, RepairConfig};
use prdnn_serve::chaos::{ChaosConfig, ChaosProxy};
use prdnn_serve::client::Client;
use prdnn_serve::protocol::{ErrorKind, ModelRef};
use prdnn_serve::server::{serve, ServerConfig, ServerHandle};
use prdnn_serve::{RetryPolicy, RetryingClient};
use serde::json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The traced `eval_heavy` run's slow threshold (ms): low enough that
/// essentially every request crosses it, so the run measures span
/// tracing *and* slow-log promotion at their most expensive, and the
/// `--trace-out` artifact has chains to show.
const TRACED_SLOW_MS: u64 = 1;

struct Args {
    secs: u64,
    rate: u64,
    clients: usize,
    mix: String,
    addr: Option<String>,
    store_dir: Option<String>,
    out: Option<String>,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        secs: 4,
        rate: 200,
        clients: 8,
        mix: "both".to_owned(),
        addr: None,
        store_dir: None,
        out: None,
        trace_out: None,
    };
    prdnn_bench::apply_threads_arg();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |what: &str| it.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--secs" => args.secs = value("--secs").parse().expect("--secs"),
            "--rate" => args.rate = value("--rate").parse().expect("--rate"),
            "--clients" => args.clients = value("--clients").parse().expect("--clients"),
            "--mix" => args.mix = value("--mix"),
            "--addr" => args.addr = Some(value("--addr")),
            "--store-dir" => args.store_dir = Some(value("--store-dir")),
            "--out" => args.out = Some(value("--out")),
            "--trace-out" => args.trace_out = Some(value("--trace-out")),
            "--threads" => {
                let _ = value("--threads"); // consumed by apply_threads_arg
            }
            other => panic!("unknown flag {other:?}"),
        }
    }
    args.clients = args.clients.max(1);
    args.rate = args.rate.max(1);
    args
}

fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[derive(Default)]
struct Tally {
    sent: AtomicU64,
    ok: AtomicU64,
    overloaded: AtomicU64,
    deadline: AtomicU64,
    other_errors: AtomicU64,
}

struct MixReport {
    name: &'static str,
    elapsed: Duration,
    sent: u64,
    ok: u64,
    overloaded: u64,
    deadline: u64,
    other_errors: u64,
    latencies_ms: Vec<f64>,
    /// Send-measured (not schedule-measured) latencies of successful
    /// `eval` requests only, sorted: the client-side view that pairs
    /// with the server's `prdnn_request_seconds{kind="eval"}` histogram.
    eval_send_ms: Vec<f64>,
    versions_published: u64,
    /// Batcher gulp counters: (gulps, items drained, largest gulp).  The
    /// mean items-per-gulp is the coalescing factor the run achieved.
    gulp_stats: (u64, u64, u64),
    /// The linted teardown scrape; the report's `stages`, `server`, and
    /// `client_vs_server` blocks are derived from it.
    scrape: Scrape,
    /// The server's `trace` response at teardown (slow-request chains).
    slow_traces: Value,
    /// The slow threshold the mix's server ran with.
    slow_ms: u64,
    /// Present only for durable mixes with an in-process server.
    durability: Option<DurabilityReport>,
}

/// What durability cost (WAL traffic during the run) and what it bought
/// (a measured cold-start recovery of everything published).
struct DurabilityReport {
    wal_appends: u64,
    wal_bytes: u64,
    snapshots: u64,
    recovery_ms: f64,
    recovered_versions: u64,
    recovered_wal_records: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn equation_2_like_spec(tweak: u64) -> PointSpec {
    // Shift the target interval slightly per request so successive repairs
    // are distinct specs (distinct hashes, non-trivial deltas).
    let shift = (tweak % 8) as f64 * 0.005;
    let mut spec = PointSpec::new();
    spec.push(
        vec![0.5],
        OutputPolytope::scalar_interval(-1.0 + shift, -0.8 + shift),
    );
    spec.push(
        vec![1.5],
        OutputPolytope::scalar_interval(-0.2 - shift, 0.0 - shift),
    );
    spec
}

/// A parsed-and-linted Prometheus scrape: every sample keyed by its full
/// name (labels included), every announced family keyed by bare name.
struct Scrape {
    samples: BTreeMap<String, f64>,
    types: BTreeMap<String, String>,
}

/// `family_suffix` or `family_suffix{labels}` — the exposition name of
/// one histogram component sample.
fn suffixed(family: &str, suffix: &str, labels: &str) -> String {
    if labels.is_empty() {
        format!("{family}_{suffix}")
    } else {
        format!("{family}_{suffix}{{{labels}}}")
    }
}

impl Scrape {
    fn value(&self, name: &str) -> f64 {
        *self
            .samples
            .get(name)
            .unwrap_or_else(|| panic!("metrics scrape is missing {name}"))
    }

    fn counter(&self, name: &str) -> u64 {
        self.value(name) as u64
    }

    /// The version label stamped on `prdnn_build_info`.
    fn build_version(&self) -> String {
        self.samples
            .keys()
            .find_map(|k| {
                k.strip_prefix("prdnn_build_info{version=\"")
                    .and_then(|rest| rest.strip_suffix("\"}"))
            })
            .expect("scrape has no prdnn_build_info sample")
            .to_owned()
    }

    /// All of `family`'s series: label set (without `le`) → cumulative
    /// buckets as (upper bound, cumulative count), sorted by bound.
    fn histogram_series(&self, family: &str) -> BTreeMap<String, Vec<(f64, u64)>> {
        let prefix = format!("{family}_bucket{{");
        let mut series: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
        for (key, &value) in &self.samples {
            let Some(inner) = key
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix('}'))
            else {
                continue;
            };
            let mut le = None;
            let mut labels = Vec::new();
            // Label values here never contain commas or escaped quotes,
            // so a flat split is a faithful parse.
            for part in inner.split(',') {
                match part.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
                    Some(v) => le = Some(v.to_owned()),
                    None => labels.push(part),
                }
            }
            let le = le.unwrap_or_else(|| panic!("bucket sample without le: {key}"));
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .unwrap_or_else(|_| panic!("unparsable le {le:?} in {key}"))
            };
            series
                .entry(labels.join(","))
                .or_default()
                .push((le, value as u64));
        }
        for buckets in series.values_mut() {
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        }
        series
    }

    /// The inclusive upper bound (in the family's native unit — seconds
    /// for latency families) of the bucket holding the rank-`ceil(q*n)`
    /// value, mirroring the server's own quantile rule.
    fn histogram_quantile(&self, family: &str, labels: &str, q: f64) -> f64 {
        let series = self.histogram_series(family);
        let buckets = series
            .get(labels)
            .unwrap_or_else(|| panic!("no histogram series {family}{{{labels}}}"));
        let count = buckets.last().map(|&(_, cum)| cum).unwrap_or(0);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        for &(le, cum) in buckets {
            if cum >= rank && le.is_finite() {
                return le;
            }
        }
        // Only reachable if the rank falls in +Inf (values clamped past
        // the histogram range); report the largest finite bound.
        buckets
            .iter()
            .rev()
            .find(|(le, _)| le.is_finite())
            .map(|&(le, _)| le)
            .unwrap_or(0.0)
    }
}

/// Parses and lints one metrics exposition: every line well-formed,
/// every sample family announced with HELP and TYPE, counters
/// `_total`-suffixed and integral, histogram series internally
/// consistent.  Panics (failing the bench) on the first violation.
fn lint_scrape(text: &str) -> Scrape {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut samples: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("malformed HELP line: {line:?}"));
            assert!(
                name.starts_with("prdnn_") && !help.is_empty(),
                "malformed HELP line: {line:?}"
            );
            assert!(helps.insert(name.to_owned()), "duplicate HELP for {name}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("malformed TYPE line: {line:?}"));
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind:?} for {name}"
            );
            assert!(name.starts_with("prdnn_"), "malformed TYPE line: {line:?}");
            assert!(
                types.insert(name.to_owned(), kind.to_owned()).is_none(),
                "duplicate TYPE for {name}"
            );
        } else if line.starts_with('#') || line.is_empty() {
            panic!("unexpected line in exposition: {line:?}");
        } else {
            let (name, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("malformed sample line: {line:?}"));
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("non-numeric sample value: {line:?}"));
            assert!(
                value.is_finite() && value >= 0.0,
                "sample value out of range: {line:?}"
            );
            assert!(
                name.starts_with("prdnn_"),
                "sample outside the prdnn_ namespace: {line:?}"
            );
            assert!(
                samples.insert(name.to_owned(), value).is_none(),
                "duplicate sample {name}"
            );
        }
    }
    assert!(
        samples.len() >= 30,
        "metrics scrape returned only {} samples",
        samples.len()
    );

    // Every sample must resolve to an announced family of the right
    // shape; every announced family must carry both comments.
    for family in &helps {
        assert!(
            types.contains_key(family),
            "family {family} has HELP but no TYPE"
        );
    }
    for (name, value) in &samples {
        let base = name.split('{').next().unwrap();
        let family = if types.contains_key(base) {
            base
        } else {
            let stripped = base
                .strip_suffix("_bucket")
                .or_else(|| base.strip_suffix("_sum"))
                .or_else(|| base.strip_suffix("_count"))
                .unwrap_or_else(|| panic!("sample {name} has no TYPE"));
            assert_eq!(
                types.get(stripped).map(String::as_str),
                Some("histogram"),
                "sample {name} is a histogram component of an unannounced family"
            );
            stripped
        };
        assert!(
            helps.contains(family),
            "family {family} has TYPE but no HELP"
        );
        if types[family] == "counter" {
            assert!(
                family.ends_with("_total"),
                "counter {family} is missing the _total suffix"
            );
            assert_eq!(
                value.fract(),
                0.0,
                "counter {name} is not integral: {value}"
            );
        }
    }

    let scrape = Scrape { samples, types };
    let hist_families: Vec<String> = scrape
        .types
        .iter()
        .filter(|(_, kind)| kind.as_str() == "histogram")
        .map(|(name, _)| name.clone())
        .collect();
    assert!(
        hist_families.len() >= 6,
        "expected at least 6 histogram families, scrape exposes {}",
        hist_families.len()
    );
    for family in &hist_families {
        let series = scrape.histogram_series(family);
        assert!(!series.is_empty(), "histogram {family} exported no series");
        for (labels, buckets) in &series {
            let (last_le, last_cum) = *buckets.last().unwrap();
            assert!(
                last_le.is_infinite(),
                "{family}{{{labels}}}: no +Inf bucket"
            );
            let count = scrape.counter(&suffixed(family, "count", labels));
            assert_eq!(
                last_cum, count,
                "{family}{{{labels}}}: +Inf bucket disagrees with _count"
            );
            let mut prev = (f64::NEG_INFINITY, 0u64);
            for &(le, cum) in buckets {
                assert!(
                    le > prev.0,
                    "{family}{{{labels}}}: bucket bounds not strictly increasing"
                );
                assert!(
                    cum >= prev.1,
                    "{family}{{{labels}}}: cumulative counts decreased at le={le}"
                );
                prev = (le, cum);
            }
            let sum = scrape.value(&suffixed(family, "sum", labels));
            if count == 0 {
                assert_eq!(
                    sum, 0.0,
                    "{family}{{{labels}}}: empty series with nonzero _sum"
                );
            }
        }
    }
    scrape
}

/// Invariants tying histogram counts to the server's own request
/// counters.  Exact equalities hold only once the request planes have
/// quiesced (all bench clients joined); repair jobs and their WAL
/// publishes may still be settling when the scrape renders, so the job
/// and WAL families are checked as inequalities whose direction is safe
/// under concurrent settling.
fn cross_check(s: &Scrape) {
    let hist = |family: &str, labels: &str| s.counter(&suffixed(family, "count", labels));
    assert_eq!(
        hist("prdnn_request_seconds", "kind=\"eval\""),
        s.counter("prdnn_eval_requests_total"),
        "eval e2e histogram count diverged from the eval request counter"
    );
    assert_eq!(
        hist("prdnn_request_seconds", "kind=\"lin_regions\""),
        s.counter("prdnn_lin_requests_total"),
        "lin_regions e2e histogram count diverged from the request counter"
    );
    assert_eq!(
        hist("prdnn_batch_queue_wait_seconds", ""),
        s.counter("prdnn_gulp_items_total"),
        "batch queue-wait histogram count diverged from drained items"
    );
    assert_eq!(
        hist("prdnn_gulp_size", ""),
        s.counter("prdnn_gulps_total"),
        "gulp-size histogram count diverged from the gulp counter"
    );
    assert_eq!(
        s.value("prdnn_gulp_size_sum") as u64,
        s.counter("prdnn_gulp_items_total"),
        "gulp-size histogram sum diverged from drained items"
    );
    assert_eq!(
        hist("prdnn_batch_exec_seconds", ""),
        s.counter("prdnn_eval_batches_total") + s.counter("prdnn_lin_batches_total"),
        "batch-exec histogram count diverged from executed batch groups"
    );
    assert!(
        hist("prdnn_job_queue_wait_seconds", "") <= s.counter("prdnn_jobs_submitted_total"),
        "more job queue-wait samples than jobs submitted"
    );
    assert!(
        hist("prdnn_lp_solve_seconds", "") <= s.counter("prdnn_jobs_submitted_total"),
        "more LP solve samples than jobs submitted"
    );
    assert!(
        hist("prdnn_wal_fsync_seconds", "") >= s.counter("prdnn_wal_appends_total"),
        "fewer WAL fsync samples than acknowledged WAL appends"
    );
    assert!(
        hist("prdnn_cache_service_seconds", "result=\"hit\"")
            <= s.counter("prdnn_cache_hits_total"),
        "more cache-hit service samples than cache hits"
    );
    assert!(
        hist("prdnn_cache_service_seconds", "result=\"miss\"")
            <= s.counter("prdnn_cache_misses_total"),
        "more cache-miss service samples than cache misses"
    );
}

/// Scrapes the metrics endpoint and runs the exposition lint.  The
/// cross-counter checks ([`cross_check`]) are the caller's to apply —
/// they assume a quiesced server.
fn scrape_metrics(client: &mut Client) -> Scrape {
    let text = client.metrics().expect("metrics request");
    lint_scrape(&text)
}

/// One stage's report block: sample count plus mean/p50/p99 derived
/// from the scrape's histogram.  Latency stages are in milliseconds;
/// `gulp_size` stays in items.
fn stage_json(s: &Scrape, family: &str, labels: &str, seconds: bool) -> Value {
    let count = s.counter(&suffixed(family, "count", labels));
    let sum = s.value(&suffixed(family, "sum", labels));
    let scale = if seconds { 1e3 } else { 1.0 };
    Value::obj([
        ("count", Value::Num(count as f64)),
        (
            "mean",
            Value::Num(if count == 0 {
                0.0
            } else {
                sum * scale / count as f64
            }),
        ),
        (
            "p50",
            Value::Num(s.histogram_quantile(family, labels, 0.50) * scale),
        ),
        (
            "p99",
            Value::Num(s.histogram_quantile(family, labels, 0.99) * scale),
        ),
    ])
}

/// The per-stage breakdown block shared by every mix report.
fn stages_json(s: &Scrape) -> Value {
    Value::obj([
        (
            "batch_queue_wait_ms",
            stage_json(s, "prdnn_batch_queue_wait_seconds", "", true),
        ),
        (
            "batch_exec_ms",
            stage_json(s, "prdnn_batch_exec_seconds", "", true),
        ),
        ("gulp_size", stage_json(s, "prdnn_gulp_size", "", false)),
        (
            "job_queue_wait_ms",
            stage_json(s, "prdnn_job_queue_wait_seconds", "", true),
        ),
        (
            "lp_solve_ms",
            stage_json(s, "prdnn_lp_solve_seconds", "", true),
        ),
        (
            "wal_fsync_ms",
            stage_json(s, "prdnn_wal_fsync_seconds", "", true),
        ),
        (
            "cache_hit_service_ms",
            stage_json(s, "prdnn_cache_service_seconds", "result=\"hit\"", true),
        ),
        (
            "cache_miss_service_ms",
            stage_json(s, "prdnn_cache_service_seconds", "result=\"miss\"", true),
        ),
    ])
}

/// The scrape-derived provenance block stamped into every mix report.
fn server_json(s: &Scrape, slow_ms: u64) -> Value {
    Value::obj([
        ("build_version", Value::Str(s.build_version())),
        ("uptime_s", Value::Num(s.value("prdnn_uptime_seconds"))),
        ("slow_ms", Value::Num(slow_ms as f64)),
    ])
}

/// Runs one mix against a fresh server (or the external `addr`) and
/// gathers the report.  `slow_ms` overrides the server's slow-trace
/// threshold (`None` keeps the default; ignored with `--addr`, whose
/// server this process does not configure).
fn run_mix(
    name: &'static str,
    args: &Args,
    repair_share_pct: u64,
    store_dir: Option<&std::path::Path>,
    slow_ms: Option<u64>,
) -> MixReport {
    let effective_slow_ms = slow_ms.unwrap_or(ServerConfig::default().slow_ms);
    let own_server: Option<ServerHandle> = if args.addr.is_none() {
        let mut config = ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            max_connections: args.clients + 8,
            store_dir: store_dir.map(|p| p.to_path_buf()),
            ..ServerConfig::default()
        };
        config.slow_ms = effective_slow_ms;
        Some(serve(config).expect("ephemeral bind"))
    } else {
        None
    };
    let addr: SocketAddr = match (&own_server, &args.addr) {
        (Some(handle), _) => handle.addr(),
        (None, Some(addr)) => addr.parse().expect("--addr must be HOST:PORT"),
        (None, None) => unreachable!(),
    };

    // Model setup: an MLP for evals, the paper's N1 for repairs.  Loading
    // twice (both mixes share names) is fine on a fresh server; on an
    // external server the duplicate-load error is ignored.
    {
        let mut setup = Client::connect(addr).expect("connect for setup");
        let _ = setup.load_generator("bench-eval", "mlp:31:8x24x24x5");
        let _ = setup.load_generator("bench-repair", "n1");
    }

    let tally = Arc::new(Tally::default());
    let duration = Duration::from_secs(args.secs.max(1));
    let start = Instant::now();
    let per_client_rate = (args.rate as f64 / args.clients as f64).max(0.1);
    let clients = args.clients;
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return (Vec::new(), Vec::new()),
                };
                let mut latencies = Vec::new();
                let mut eval_send = Vec::new();
                let interval = Duration::from_secs_f64(1.0 / per_client_rate);
                // Stagger the clients' schedules so arrivals interleave
                // instead of lock-stepping.
                let phase = interval.mul_f64(c as f64 / clients as f64);
                let mut k = 0u64;
                loop {
                    let scheduled = start + phase + interval * (k as u32);
                    if scheduled.duration_since(start) >= duration {
                        break;
                    }
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    tally.sent.fetch_add(1, Ordering::Relaxed);
                    let roll = (k * 37 + c as u64 * 13) % 100;
                    let send_start = Instant::now();
                    let mut is_eval = false;
                    let result = if roll < repair_share_pct {
                        client
                            .repair(
                                &ModelRef::latest("bench-repair"),
                                0,
                                equation_2_like_spec(k),
                                RepairConfig::default(),
                            )
                            .map(|_| ())
                    } else if roll >= 90 {
                        client
                            .lin_regions(
                                &ModelRef::latest("bench-eval"),
                                vec![vec![
                                    vec![-1.0, 0.0, 0.1, 0.2, -0.1, 0.3, 0.0, 0.4],
                                    vec![1.0, 0.5, -0.1, 0.0, 0.2, -0.3, 0.1, -0.4],
                                ]],
                                Some(5_000),
                            )
                            .map(|_| ())
                    } else {
                        is_eval = true;
                        let inputs: Vec<Vec<f64>> = (0..4)
                            .map(|p| {
                                (0..8)
                                    .map(|i| ((k + p) * 8 + i) as f64 * 0.03 % 1.0 - 0.5)
                                    .collect()
                            })
                            .collect();
                        client
                            .eval(&ModelRef::latest("bench-eval"), inputs, Some(5_000))
                            .map(|_| ())
                    };
                    // Latency from the *scheduled* arrival (open loop).
                    let latency = scheduled.elapsed();
                    match result {
                        Ok(()) => {
                            tally.ok.fetch_add(1, Ordering::Relaxed);
                            latencies.push(latency.as_secs_f64() * 1e3);
                            if is_eval {
                                // Send-measured as well: the client-side
                                // number the server's residence histogram
                                // is compared against.
                                eval_send.push(send_start.elapsed().as_secs_f64() * 1e3);
                            }
                        }
                        Err(e) => match e.kind() {
                            Some(ErrorKind::Overloaded) => {
                                tally.overloaded.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(ErrorKind::DeadlineExceeded) => {
                                tally.deadline.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                tally.other_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        },
                    }
                    k += 1;
                }
                (latencies, eval_send)
            })
        })
        .collect();

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut eval_send_ms: Vec<f64> = Vec::new();
    for w in workers {
        let (lats, evals) = w.join().expect("client thread panicked");
        latencies_ms.extend(lats);
        eval_send_ms.extend(evals);
    }
    let elapsed = start.elapsed();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    eval_send_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let (versions_published, gulp_stats, scrape, slow_traces, durability) = {
        let mut client = Client::connect(addr).expect("connect for teardown");
        let published = client
            .list_versions("bench-repair")
            .map(|v| v.len() as u64 - 1)
            .unwrap_or(0);
        let stats = client.stats().ok();
        let gulp_stats = stats
            .as_ref()
            .map(|s| (s.gulps, s.gulp_items, s.max_gulp))
            .unwrap_or((0, 0, 0));
        // Every mix doubles as a metrics-scrape check: malformed
        // exposition text fails the bench, not just some dashboard.  On
        // an in-process server the request planes have quiesced, so the
        // histogram-vs-counter invariants must hold exactly too.
        let scrape = scrape_metrics(&mut client);
        if own_server.is_some() {
            cross_check(&scrape);
        }
        let slow_traces = client.trace().expect("trace request");
        if own_server.is_some() && effective_slow_ms == 0 {
            assert_eq!(
                slow_traces.as_arr().map(|a| a.len()),
                Some(0),
                "{name}: slow_ms=0 must disable the slow-trace log"
            );
        }
        let owned = own_server.is_some();
        if let Some(handle) = own_server {
            client.shutdown_server().expect("shutdown");
            drop(client);
            handle.join().expect("server drain");
        }
        // Durability epilogue: cold-start a fresh server on the same
        // directory and time how long recovery (which runs before the
        // bind returns) takes to bring every published version back.
        let durability = match (store_dir, owned, stats) {
            (Some(dir), true, Some(stats)) => {
                let t0 = Instant::now();
                let handle = serve(ServerConfig {
                    addr: "127.0.0.1:0".to_owned(),
                    store_dir: Some(dir.to_path_buf()),
                    ..ServerConfig::default()
                })
                .expect("recovery bind");
                let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
                let mut probe = Client::connect(handle.addr()).expect("connect for recovery");
                let after = probe.stats().expect("recovery stats");
                assert!(
                    after.recovered_versions > published,
                    "recovery lost versions: {} recovered, {} published",
                    after.recovered_versions,
                    published + 1
                );
                probe.shutdown_server().expect("recovery shutdown");
                drop(probe);
                handle.join().expect("recovery drain");
                Some(DurabilityReport {
                    wal_appends: stats.wal_appends,
                    wal_bytes: stats.wal_bytes,
                    snapshots: stats.snapshots,
                    recovery_ms,
                    recovered_versions: after.recovered_versions,
                    recovered_wal_records: after.recovered_wal_records,
                })
            }
            _ => None,
        };
        (published, gulp_stats, scrape, slow_traces, durability)
    };

    // Client-vs-server teardown comparison: the server's own residence
    // histogram must not claim a larger median than clients measured
    // from the send — residence is a strict subset of what the client
    // sees (wire + serde on top).  The slack covers bucket resolution
    // (~3%) and scheduler noise on loaded CI hosts.
    let eval_hist_count =
        scrape.counter(&suffixed("prdnn_request_seconds", "count", "kind=\"eval\""));
    if eval_send_ms.len() >= 50 && eval_hist_count > 0 {
        let client_p50 = percentile(&eval_send_ms, 0.50);
        let server_p50 =
            scrape.histogram_quantile("prdnn_request_seconds", "kind=\"eval\"", 0.50) * 1e3;
        let slack = (client_p50 * 0.5).max(2.0);
        assert!(
            server_p50 <= client_p50 + slack,
            "{name}: server-side eval p50 {server_p50:.3}ms implausibly above \
             client-side {client_p50:.3}ms"
        );
    }

    MixReport {
        name,
        elapsed,
        sent: tally.sent.load(Ordering::Relaxed),
        ok: tally.ok.load(Ordering::Relaxed),
        overloaded: tally.overloaded.load(Ordering::Relaxed),
        deadline: tally.deadline.load(Ordering::Relaxed),
        other_errors: tally.other_errors.load(Ordering::Relaxed),
        latencies_ms,
        eval_send_ms,
        versions_published,
        gulp_stats,
        scrape,
        slow_traces,
        slow_ms: effective_slow_ms,
        durability,
    }
}

/// How many distinct payloads the hot phase cycles through.  Small
/// enough that the pool warms almost immediately (the first request for
/// each entry is the only miss), large enough that the phase is not one
/// degenerate key.
const CACHED_HOT_POOL: u64 = 16;

/// Cold-phase payload: unique per `(client, request)`, and offset away
/// from the hot pool's value range, so every request is a cache miss.
fn cached_cold_payload(c: usize, k: u64) -> Vec<Vec<f64>> {
    let tag = c as u64 * 1_000_003 + k;
    (0..4u64)
        .map(|p| {
            (0..8u64)
                .map(|i| (tag * 32 + p * 8 + i) as f64 * 1e-4 + 10.0)
                .collect()
        })
        .collect()
}

/// Hot-phase payload: drawn from a pool of [`CACHED_HOT_POOL`] payloads
/// shared by every client, so after each entry's first (miss) request
/// every recurrence — from any client — is a cache hit.
fn cached_hot_payload(_c: usize, k: u64) -> Vec<Vec<f64>> {
    let tag = k % CACHED_HOT_POOL;
    (0..4u64)
        .map(|p| {
            (0..8u64)
                .map(|i| ((tag * 32 + p * 8 + i) as f64 * 0.03) % 1.0 - 0.5)
                .collect()
        })
        .collect()
}

/// Runs one closed-loop phase of the cached mix: `clients` threads each
/// issue `per_client` evals back-to-back, measuring latency from the
/// send.  Returns the sorted latencies in milliseconds.
fn cached_phase(
    addr: SocketAddr,
    clients: usize,
    per_client: u64,
    payload: fn(usize, u64) -> Vec<Vec<f64>>,
) -> Vec<f64> {
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect for cached phase");
                let mut latencies = Vec::with_capacity(per_client as usize);
                for k in 0..per_client {
                    let inputs = payload(c, k);
                    let t0 = Instant::now();
                    client
                        .eval(&ModelRef::latest("bench-eval"), inputs, Some(10_000))
                        .expect("cached-mix eval");
                    latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("cached client thread panicked"));
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    latencies
}

/// Runs the `eval_cached` mix and returns its JSON report.  Asserts the
/// acceptance bar inline: hot-phase hit rate at least 90%, and a cache
/// hit cheaper than a miss at the median.
fn run_cached_mix(args: &Args) -> Value {
    let own_server: Option<ServerHandle> = if args.addr.is_none() {
        Some(
            serve(ServerConfig {
                addr: "127.0.0.1:0".to_owned(),
                max_connections: args.clients + 8,
                ..ServerConfig::default()
            })
            .expect("ephemeral bind"),
        )
    } else {
        None
    };
    let addr: SocketAddr = match (&own_server, &args.addr) {
        (Some(handle), _) => handle.addr(),
        (None, Some(addr)) => addr.parse().expect("--addr must be HOST:PORT"),
        (None, None) => unreachable!(),
    };
    {
        let mut setup = Client::connect(addr).expect("connect for setup");
        let _ = setup.load_generator("bench-eval", "mlp:31:8x24x24x5");
    }

    // Size the phases off the offered-load knobs: the hot phase is 4x
    // the cold one so pool warm-up (one miss per pool entry) is noise.
    let per_client = ((args.rate * args.secs.max(1)) as usize / args.clients).max(32) as u64;
    let start = Instant::now();
    let miss_latencies = cached_phase(addr, args.clients, per_client, cached_cold_payload);
    let mid = Client::connect(addr)
        .expect("connect for mid stats")
        .stats()
        .expect("mid stats");
    let hit_latencies = cached_phase(addr, args.clients, per_client * 4, cached_hot_payload);
    let elapsed = start.elapsed();

    let mut teardown = Client::connect(addr).expect("connect for teardown");
    let stats = teardown.stats().expect("server stats");
    let scrape = scrape_metrics(&mut teardown);
    if own_server.is_some() {
        cross_check(&scrape);
    }
    if let Some(handle) = own_server {
        teardown.shutdown_server().expect("shutdown");
        drop(teardown);
        handle.join().expect("server drain");
    }

    let hot_hits = stats.cache_hits - mid.cache_hits;
    let hot_total = hot_hits + (stats.cache_misses - mid.cache_misses);
    let hit_rate_hot = hot_hits as f64 / hot_total.max(1) as f64;
    let miss_p50 = percentile(&miss_latencies, 0.50);
    let hit_p50 = percentile(&hit_latencies, 0.50);
    assert!(
        hit_rate_hot >= 0.90,
        "eval_cached: hot-phase hit rate {hit_rate_hot:.3} below 0.90 \
         ({hot_hits}/{hot_total})"
    );
    assert!(
        hit_p50 < miss_p50,
        "eval_cached: hit p50 {hit_p50:.3}ms not below miss p50 {miss_p50:.3}ms"
    );

    Value::obj([
        ("mix", Value::Str("eval_cached".to_owned())),
        ("clients", Value::Num(args.clients as f64)),
        ("host_cores", Value::Num(host_cores() as f64)),
        ("duration_s", Value::Num(elapsed.as_secs_f64())),
        (
            "server",
            server_json(&scrape, ServerConfig::default().slow_ms),
        ),
        (
            "requests",
            Value::obj([
                ("cold", Value::Num(miss_latencies.len() as f64)),
                ("hot", Value::Num(hit_latencies.len() as f64)),
            ]),
        ),
        ("hit_rate_hot", Value::Num(hit_rate_hot)),
        (
            "cache",
            Value::obj([
                ("hits", Value::Num(stats.cache_hits as f64)),
                ("misses", Value::Num(stats.cache_misses as f64)),
                ("inserts", Value::Num(stats.cache_inserts as f64)),
                ("evictions", Value::Num(stats.cache_evictions as f64)),
                ("fill_skips", Value::Num(stats.cache_fill_skips as f64)),
                ("bytes", Value::Num(stats.cache_bytes as f64)),
            ]),
        ),
        (
            "latency_ms",
            Value::obj([
                ("miss_p50", Value::Num(miss_p50)),
                ("miss_p90", Value::Num(percentile(&miss_latencies, 0.90))),
                ("miss_p99", Value::Num(percentile(&miss_latencies, 0.99))),
                ("hit_p50", Value::Num(hit_p50)),
                ("hit_p90", Value::Num(percentile(&hit_latencies, 0.90))),
                ("hit_p99", Value::Num(percentile(&hit_latencies, 0.99))),
            ]),
        ),
        ("stages", stages_json(&scrape)),
    ])
}

/// One availability measurement: an eval workload pushed through a chaos
/// proxy under one fault regime, every client behind a retry policy.
struct ChaosRegimeReport {
    regime: &'static str,
    elapsed: Duration,
    sent: u64,
    ok: u64,
    retries: u64,
    reconnects: u64,
    giveups: u64,
    /// Server-side load shedding during the run: queue-full rejections
    /// plus connections turned away at the cap.
    sheds: u64,
    io_timeouts: u64,
    /// Proxy's own ledger: (connections, delayed, corrupted, dropped,
    /// truncated, severed).
    proxy: (u64, u64, u64, u64, u64, u64),
    latencies_ms: Vec<f64>,
    /// Teardown scrape over a direct (un-proxied) connection; format
    /// lint only — abandoned frames may still be settling when it runs,
    /// so the quiesce-only counter equalities are not asserted here.
    scrape: Scrape,
}

/// The fault-regime sweep: a fault-free baseline, each fault family in
/// isolation, then everything at once.  Per-mille rates are aggressive
/// enough that a few-second run sees every family fire.
fn chaos_regimes() -> Vec<(&'static str, ChaosConfig)> {
    vec![
        ("fault_free", ChaosConfig::fault_free(1)),
        (
            "delay",
            ChaosConfig {
                delay_per_mille: 300,
                max_delay_ms: 10,
                ..ChaosConfig::fault_free(2)
            },
        ),
        (
            "corrupt",
            ChaosConfig {
                corrupt_per_mille: 60,
                ..ChaosConfig::fault_free(3)
            },
        ),
        (
            "drop",
            ChaosConfig {
                drop_per_mille: 60,
                ..ChaosConfig::fault_free(4)
            },
        ),
        (
            "sever",
            ChaosConfig {
                sever_per_mille: 40,
                ..ChaosConfig::fault_free(5)
            },
        ),
        (
            "all_faults",
            ChaosConfig {
                sever_per_mille: 25,
                truncate_per_mille: 25,
                corrupt_per_mille: 40,
                drop_per_mille: 40,
                delay_per_mille: 150,
                max_delay_ms: 10,
                ..ChaosConfig::fault_free(6)
            },
        ),
    ]
}

/// Runs the eval workload through a chaos proxy under one fault regime
/// against a fresh in-process server, and reports availability.
fn run_chaos_regime(regime: &'static str, args: &Args, config: ChaosConfig) -> ChaosRegimeReport {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_connections: args.clients + 8,
        // Short enough that severed-mid-frame connections free their
        // slots well within the run.
        io_timeout_ms: 2_000,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    {
        let mut setup = Client::connect(handle.addr()).expect("connect for setup");
        setup
            .load_generator("bench-eval", "mlp:31:8x24x24x5")
            .expect("load eval model");
    }
    let mut proxy = ChaosProxy::start(handle.addr(), config).expect("start chaos proxy");
    let proxy_addr = proxy.addr();

    let duration = Duration::from_secs(args.secs.max(1));
    let start = Instant::now();
    let per_client_rate = (args.rate as f64 / args.clients as f64).max(0.1);
    let clients = args.clients;
    let workers: Vec<_> = (0..args.clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = RetryingClient::new(
                    proxy_addr,
                    RetryPolicy {
                        max_attempts: 8,
                        base_delay: Duration::from_millis(5),
                        max_delay: Duration::from_millis(100),
                        jitter_per_mille: 200,
                        seed: 100 + c as u64,
                    },
                    Duration::from_secs(1),
                );
                let mut latencies = Vec::new();
                let (mut sent, mut ok) = (0u64, 0u64);
                let interval = Duration::from_secs_f64(1.0 / per_client_rate);
                let phase = interval.mul_f64(c as f64 / clients as f64);
                let mut k = 0u64;
                loop {
                    let scheduled = start + phase + interval * (k as u32);
                    if scheduled.duration_since(start) >= duration {
                        break;
                    }
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    sent += 1;
                    let inputs: Vec<Vec<f64>> = vec![(0..8)
                        .map(|i| (k * 8 + i) as f64 * 0.03 % 1.0 - 0.5)
                        .collect()];
                    if client
                        .eval(
                            &ModelRef::latest("bench-eval"),
                            &inputs,
                            Some(1_000),
                            Duration::from_secs(2),
                        )
                        .is_ok()
                    {
                        ok += 1;
                        // Latency from the scheduled arrival, retries and
                        // backoff sleeps included: availability pricing.
                        latencies.push(scheduled.elapsed().as_secs_f64() * 1e3);
                    }
                    k += 1;
                }
                (sent, ok, latencies, client.stats)
            })
        })
        .collect();

    let (mut sent, mut ok) = (0u64, 0u64);
    let (mut retries, mut reconnects, mut giveups) = (0u64, 0u64, 0u64);
    let mut latencies_ms: Vec<f64> = Vec::new();
    for w in workers {
        let (s, o, lats, stats) = w.join().expect("chaos client thread panicked");
        sent += s;
        ok += o;
        latencies_ms.extend(lats);
        retries += stats.retries;
        reconnects += stats.reconnects;
        giveups += stats.giveups;
    }
    let elapsed = start.elapsed();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());

    // Stats and shutdown over a *direct* connection — the report must not
    // depend on a stats frame surviving the proxy.
    let mut teardown = Client::connect(handle.addr()).expect("connect for teardown");
    let stats = teardown.stats().expect("server stats");
    let scrape = scrape_metrics(&mut teardown);
    teardown.shutdown_server().expect("shutdown");
    drop(teardown);
    handle.join().expect("server drain");
    let counters = proxy.counters();
    let proxy_counts = (
        counters.connections.load(Ordering::Relaxed),
        counters.delayed.load(Ordering::Relaxed),
        counters.corrupted.load(Ordering::Relaxed),
        counters.dropped.load(Ordering::Relaxed),
        counters.truncated.load(Ordering::Relaxed),
        counters.severed.load(Ordering::Relaxed),
    );
    proxy.shutdown();

    ChaosRegimeReport {
        regime,
        elapsed,
        sent,
        ok,
        retries,
        reconnects,
        giveups,
        sheds: stats.batch_shed + stats.jobs_shed + stats.conns_rejected,
        io_timeouts: stats.io_timeouts,
        proxy: proxy_counts,
        latencies_ms,
        scrape,
    }
}

fn chaos_report_to_json(r: &ChaosRegimeReport, args: &Args) -> Value {
    Value::obj([
        ("regime", Value::Str(r.regime.to_owned())),
        ("offered_rps", Value::Num(args.rate as f64)),
        ("duration_s", Value::Num(r.elapsed.as_secs_f64())),
        ("host_cores", Value::Num(host_cores() as f64)),
        (
            "server",
            server_json(&r.scrape, ServerConfig::default().slow_ms),
        ),
        ("sent", Value::Num(r.sent as f64)),
        ("completed", Value::Num(r.ok as f64)),
        (
            "success_rate",
            Value::Num(if r.sent == 0 {
                0.0
            } else {
                r.ok as f64 / r.sent as f64
            }),
        ),
        ("retries", Value::Num(r.retries as f64)),
        ("reconnects", Value::Num(r.reconnects as f64)),
        ("giveups", Value::Num(r.giveups as f64)),
        ("sheds", Value::Num(r.sheds as f64)),
        ("io_timeouts", Value::Num(r.io_timeouts as f64)),
        (
            "proxy",
            Value::obj([
                ("connections", Value::Num(r.proxy.0 as f64)),
                ("delayed", Value::Num(r.proxy.1 as f64)),
                ("corrupted", Value::Num(r.proxy.2 as f64)),
                ("dropped", Value::Num(r.proxy.3 as f64)),
                ("truncated", Value::Num(r.proxy.4 as f64)),
                ("severed", Value::Num(r.proxy.5 as f64)),
            ]),
        ),
        (
            "latency_ms",
            Value::obj([
                ("p50", Value::Num(percentile(&r.latencies_ms, 0.50))),
                ("p99", Value::Num(percentile(&r.latencies_ms, 0.99))),
                (
                    "max",
                    Value::Num(r.latencies_ms.last().copied().unwrap_or(0.0)),
                ),
            ]),
        ),
    ])
}

fn report_to_json(report: &MixReport, args: &Args) -> Value {
    let mut pairs = vec![
        ("mix", Value::Str(report.name.to_owned())),
        ("offered_rps", Value::Num(args.rate as f64)),
        ("clients", Value::Num(args.clients as f64)),
        ("host_cores", Value::Num(host_cores() as f64)),
        ("duration_s", Value::Num(report.elapsed.as_secs_f64())),
        ("server", server_json(&report.scrape, report.slow_ms)),
        ("sent", Value::Num(report.sent as f64)),
        ("completed", Value::Num(report.ok as f64)),
        (
            "throughput_rps",
            Value::Num(report.ok as f64 / report.elapsed.as_secs_f64()),
        ),
        ("overloaded", Value::Num(report.overloaded as f64)),
        ("deadline_exceeded", Value::Num(report.deadline as f64)),
        ("other_errors", Value::Num(report.other_errors as f64)),
        (
            "versions_published",
            Value::Num(report.versions_published as f64),
        ),
        (
            "batcher",
            Value::obj([
                ("gulps", Value::Num(report.gulp_stats.0 as f64)),
                ("gulp_items", Value::Num(report.gulp_stats.1 as f64)),
                (
                    "mean_gulp",
                    Value::Num(if report.gulp_stats.0 == 0 {
                        0.0
                    } else {
                        report.gulp_stats.1 as f64 / report.gulp_stats.0 as f64
                    }),
                ),
                ("max_gulp", Value::Num(report.gulp_stats.2 as f64)),
            ]),
        ),
        (
            "latency_ms",
            Value::obj([
                ("p50", Value::Num(percentile(&report.latencies_ms, 0.50))),
                ("p90", Value::Num(percentile(&report.latencies_ms, 0.90))),
                ("p99", Value::Num(percentile(&report.latencies_ms, 0.99))),
                (
                    "max",
                    Value::Num(report.latencies_ms.last().copied().unwrap_or(0.0)),
                ),
            ]),
        ),
        ("stages", stages_json(&report.scrape)),
        (
            "slow_traces",
            Value::Num(report.slow_traces.as_arr().map(|a| a.len()).unwrap_or(0) as f64),
        ),
    ];
    if !report.eval_send_ms.is_empty() {
        let quantile = |q| {
            report
                .scrape
                .histogram_quantile("prdnn_request_seconds", "kind=\"eval\"", q)
                * 1e3
        };
        let client_p50 = percentile(&report.eval_send_ms, 0.50);
        let server_p50 = quantile(0.50);
        pairs.push((
            "client_vs_server",
            Value::obj([
                (
                    "eval_requests",
                    Value::Num(report.eval_send_ms.len() as f64),
                ),
                ("client_p50_ms", Value::Num(client_p50)),
                (
                    "client_p99_ms",
                    Value::Num(percentile(&report.eval_send_ms, 0.99)),
                ),
                ("server_p50_ms", Value::Num(server_p50)),
                ("server_p99_ms", Value::Num(quantile(0.99))),
                ("p50_gap_ms", Value::Num(client_p50 - server_p50)),
            ]),
        ));
    }
    if let Some(d) = &report.durability {
        pairs.push((
            "durability",
            Value::obj([
                ("wal_appends", Value::Num(d.wal_appends as f64)),
                ("wal_bytes", Value::Num(d.wal_bytes as f64)),
                ("snapshots", Value::Num(d.snapshots as f64)),
                ("recovery_ms", Value::Num(d.recovery_ms)),
                (
                    "recovered_versions",
                    Value::Num(d.recovered_versions as f64),
                ),
                (
                    "recovered_wal_records",
                    Value::Num(d.recovered_wal_records as f64),
                ),
            ]),
        ));
    }
    Value::obj(pairs)
}

fn main() {
    let args = parse_args();
    let mut reports = Vec::new();
    // (traced, untraced) indices into `reports` for the overhead block.
    let mut eval_pair: Option<(usize, usize)> = None;
    if args.mix == "both" || args.mix == "eval" {
        reports.push(run_mix("eval_heavy", &args, 0, None, Some(TRACED_SLOW_MS)));
        if args.addr.is_none() {
            // Same workload with span tracing off: the pair prices the
            // telemetry overhead.  Meaningless against an external
            // server, whose slow_ms this process cannot set.
            let on = reports.len() - 1;
            reports.push(run_mix("eval_heavy_notrace", &args, 0, None, Some(0)));
            eval_pair = Some((on, reports.len() - 1));
        }
    }
    if args.mix == "both" || args.mix == "repair" {
        reports.push(run_mix("repair_heavy", &args, 60, None, None));
    }
    if (args.mix == "both" || args.mix == "durable") && args.addr.is_none() {
        // User-named directory, or a scratch one removed afterwards.
        let (dir, scratch) = match &args.store_dir {
            Some(dir) => (std::path::PathBuf::from(dir), false),
            None => (
                std::env::temp_dir().join(format!("servebench-wal-{}", std::process::id())),
                true,
            ),
        };
        std::fs::create_dir_all(&dir).expect("create --store-dir");
        reports.push(run_mix("repair_heavy_durable", &args, 60, Some(&dir), None));
        if scratch {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let cached_report = if args.mix == "cached" {
        Some(run_cached_mix(&args))
    } else {
        None
    };
    let mut chaos_reports = Vec::new();
    if args.mix == "chaos" {
        assert!(
            args.addr.is_none(),
            "--mix chaos drives its own in-process server; drop --addr"
        );
        for (regime, config) in chaos_regimes() {
            eprintln!("servebench: chaos regime {regime}");
            let report = run_chaos_regime(regime, &args, config);
            assert!(report.ok > 0, "{regime}: no request survived the chaos");
            chaos_reports.push(report);
        }
        // The baseline regime runs through the (fault-free) proxy and the
        // retry wrapper: anything lost there is a bug, not chaos.
        let baseline = &chaos_reports[0];
        assert_eq!(
            baseline.ok + baseline.giveups,
            baseline.sent,
            "fault-free regime lost requests without a give-up"
        );
    }
    assert!(
        !reports.is_empty() || !chaos_reports.is_empty() || cached_report.is_some(),
        "--mix must be eval, repair, durable, both, cached, or chaos (got {:?})",
        args.mix
    );
    for report in &reports {
        assert!(
            report.other_errors == 0,
            "{}: {} unexpected errors",
            report.name,
            report.other_errors
        );
        assert!(report.ok > 0, "{}: no request completed", report.name);
    }

    let mut doc_pairs = vec![
        ("bench", Value::Str("servebench".to_owned())),
        ("threads", Value::Num(prdnn_par::default_threads() as f64)),
        ("host_cores", Value::Num(host_cores() as f64)),
        (
            "mixes",
            Value::Arr(reports.iter().map(|r| report_to_json(r, &args)).collect()),
        ),
    ];
    if let Some((on, off)) = eval_pair {
        let p50_on = percentile(&reports[on].eval_send_ms, 0.50);
        let p50_off = percentile(&reports[off].eval_send_ms, 0.50);
        let overhead = p50_on - p50_off;
        // The design target is < 5% — the report carries the exact
        // fraction for trend-watching.  The hard gate is looser (half
        // the median, floored at 1ms) so scheduler noise on shared CI
        // hosts cannot flake the run, while a gross regression (tracing
        // on the hot path allocating or taking locks) still fails it.
        let budget = (p50_off * 0.5).max(1.0);
        assert!(
            overhead <= budget,
            "telemetry overhead implausible: traced eval p50 {p50_on:.3}ms vs \
             untraced {p50_off:.3}ms"
        );
        doc_pairs.push((
            "telemetry_overhead",
            Value::obj([
                ("eval_p50_traced_ms", Value::Num(p50_on)),
                ("eval_p50_untraced_ms", Value::Num(p50_off)),
                ("overhead_ms", Value::Num(overhead)),
                (
                    "overhead_frac",
                    Value::Num(if p50_off > 0.0 {
                        overhead / p50_off
                    } else {
                        0.0
                    }),
                ),
            ]),
        ));
    }
    if let Some(cached) = cached_report {
        doc_pairs.push(("cached", cached));
    }
    if !chaos_reports.is_empty() {
        doc_pairs.push((
            "chaos",
            Value::Arr(
                chaos_reports
                    .iter()
                    .map(|r| chaos_report_to_json(r, &args))
                    .collect(),
            ),
        ));
    }
    let doc = Value::obj(doc_pairs);
    let json = doc.to_json();
    println!("{json}");
    if let Some(path) = &args.out {
        std::fs::write(path, &json).expect("writing --out file");
        eprintln!("servebench: wrote {path}");
    }
    if let Some(path) = &args.trace_out {
        // The traced run's slow-request chains as a standalone artifact;
        // prefer a mix that actually had tracing on.
        let traced = reports
            .iter()
            .find(|r| r.slow_ms > 0)
            .or_else(|| reports.first());
        let trace_doc = Value::obj([
            ("bench", Value::Str("servebench-trace".to_owned())),
            (
                "mix",
                Value::Str(traced.map(|r| r.name).unwrap_or("none").to_owned()),
            ),
            (
                "slow_ms",
                Value::Num(traced.map(|r| r.slow_ms).unwrap_or(0) as f64),
            ),
            ("host_cores", Value::Num(host_cores() as f64)),
            (
                "slow",
                traced
                    .map(|r| r.slow_traces.clone())
                    .unwrap_or(Value::Arr(Vec::new())),
            ),
        ]);
        std::fs::write(path, trace_doc.to_json()).expect("writing --trace-out file");
        eprintln!("servebench: wrote {path}");
    }
}
