//! Regenerates the data behind Figures 3, 4, 5, and 6 (the running example).

use prdnn_bench::figures;

fn main() {
    prdnn_bench::apply_threads_arg();
    prdnn_bench::apply_pricing_arg();
    println!("{}", figures::format_figures());
}
