//! Regenerates Table 1 (Task 1 summary).  Scale via `PRDNN_SCALE`.

use prdnn_bench::scale::{Scale, Task1Params};
use prdnn_bench::task1;

fn main() {
    prdnn_bench::apply_threads_arg();
    prdnn_bench::apply_pricing_arg();
    let scale = Scale::from_env();
    eprintln!("running Task 1 at scale {scale:?} (set PRDNN_SCALE=tiny|small|full to change)");
    let results = task1::run(&Task1Params::for_scale(scale));
    println!("{}", task1::format_table1(&results));
}
