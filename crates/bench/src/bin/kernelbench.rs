//! Kernel benchmark rig: honest statistics for the hot numeric paths.
//!
//! Measures the blocked GEMM kernels against the naive oracle (with a
//! bitwise oracle check on every run — a mismatch fails the process, which
//! is what CI keys off), plus the three end-to-end workloads the repair
//! pipeline spends its time in: `Network::forward_batch`, the DDNN
//! parameter Jacobian, and SyReNN `plane_regions`.  Pool workloads are
//! swept at `--threads 1/2/4`.
//!
//! Every case runs at least [`prdnn_bench::stats::MIN_RUNS`] times and is
//! reported as **median + IQR**, never a single sample.  The report also
//! records `host_cores`: on a 1-core container the thread sweep measures
//! pool overhead, not speedup, and the JSON says so instead of letting a
//! reader mistake the sweep for a multicore scaling claim.
//!
//! ```text
//! cargo run --release -p prdnn-bench --bin kernelbench -- \
//!     [--runs N] [--quick] [--out BENCH_kernels.json]
//! ```

use prdnn_bench::stats::{summarize, time_runs, Summary, MIN_RUNS};
use prdnn_core::DecoupledNetwork;
use prdnn_linalg::gemm;
use prdnn_nn::{Activation, Network};
use prdnn_par::ThreadPool;
use prdnn_syrenn::plane_regions_in;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json::Value;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

struct Case {
    name: String,
    config: Vec<(&'static str, Value)>,
    threads: Option<usize>,
    summary: Summary,
    /// `naive_median / blocked_median` for kernels with an oracle twin.
    speedup_vs_naive: Option<f64>,
}

fn case_to_json(case: &Case) -> Value {
    let mut fields = vec![
        ("name", Value::Str(case.name.clone())),
        (
            "config",
            Value::Obj(
                case.config
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.clone()))
                    .collect(),
            ),
        ),
        ("runs_ms", Value::num_array(&case.summary.runs_ms)),
        ("median_ms", Value::Num(case.summary.median_ms)),
        ("iqr_ms", Value::Num(case.summary.iqr_ms)),
    ];
    if let Some(threads) = case.threads {
        fields.push(("threads", Value::Num(threads as f64)));
    }
    if let Some(speedup) = case.speedup_vs_naive {
        fields.push(("speedup_vs_naive", Value::Num(speedup)));
    }
    Value::obj(fields)
}

/// Bitwise oracle comparison; a blocked kernel that disagrees with the
/// naive triple loop on even one bit is a correctness bug, not a rounding
/// footnote, so the whole bench fails.
fn check_oracle(name: &str, blocked: &[f64], naive: &[f64]) {
    let ok = blocked.len() == naive.len()
        && blocked
            .iter()
            .zip(naive)
            .all(|(x, y)| x.to_bits() == y.to_bits());
    if !ok {
        eprintln!("ORACLE MISMATCH: {name} diverged from the naive reference");
        std::process::exit(1);
    }
}

fn gemm_cases(runs: usize, cases: &mut Vec<Case>) {
    // The acceptance-criteria shape: a 256->256 dense layer applied to a
    // 64-point key-point batch (m=64, k=256, n=256).
    let (m, k, n) = (64, 256, 256);
    let mut rng = StdRng::seed_from_u64(17);
    let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let bt: Vec<f64> = (0..n * k).map(|i| b[(i % k) * n + i / k]).collect();
    let mut c = vec![0.0; m * n];
    let mut c_ref = vec![0.0; m * n];
    let config = vec![
        ("m", Value::Num(m as f64)),
        ("k", Value::Num(k as f64)),
        ("n", Value::Num(n as f64)),
    ];

    let naive = summarize(time_runs(runs, || {
        gemm::gemm_naive(m, k, n, &a, &b, &mut c_ref)
    }));
    let blocked = summarize(time_runs(runs, || gemm::gemm_nn(m, k, n, &a, &b, &mut c)));
    check_oracle("gemm_nn_256x256_b64", &c, &c_ref);
    let nt = summarize(time_runs(runs, || gemm::gemm_nt(m, k, n, &a, &bt, &mut c)));
    check_oracle("gemm_nt_256x256_b64", &c, &c_ref);

    let (mv_m, mv_k) = (256, 256);
    let x = &a[..mv_k];
    let mut y = vec![0.0; mv_m];
    let gemv = summarize(time_runs(runs, || gemm::gemv(mv_m, mv_k, &b, x, &mut y)));
    let y_ref: Vec<f64> = (0..mv_m)
        .map(|r| gemm::dot(&b[r * mv_k..(r + 1) * mv_k], x))
        .collect();
    check_oracle("gemv_256x256", &y, &y_ref);

    let naive_median = naive.median_ms;
    for (name, summary) in [
        ("gemm_naive_256x256_b64", naive),
        ("gemm_nn_256x256_b64", blocked),
        ("gemm_nt_256x256_b64", nt),
    ] {
        let speedup = (name != "gemm_naive_256x256_b64").then(|| naive_median / summary.median_ms);
        cases.push(Case {
            name: name.to_owned(),
            config: config.clone(),
            threads: None,
            summary,
            speedup_vs_naive: speedup,
        });
    }
    cases.push(Case {
        name: "gemv_256x256".to_owned(),
        config: vec![
            ("m", Value::Num(mv_m as f64)),
            ("k", Value::Num(mv_k as f64)),
        ],
        threads: None,
        summary: gemv,
        speedup_vs_naive: None,
    });
}

fn forward_batch_cases(runs: usize, cases: &mut Vec<Case>) {
    let mut rng = StdRng::seed_from_u64(23);
    let net = Network::mlp(&[256, 256, 256, 256, 10], Activation::Relu, &mut rng);
    let batch: Vec<Vec<f64>> = (0..64)
        .map(|_| (0..256).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let config = vec![
        ("net", Value::Str("mlp 256x256x256x256x10".to_owned())),
        ("batch", Value::Num(batch.len() as f64)),
    ];
    let serial = net.forward_batch(&batch);
    for threads in THREAD_SWEEP {
        let pool = ThreadPool::new(threads);
        let summary = summarize(time_runs(runs, || {
            let out = net.forward_batch_in(&pool, &batch);
            assert_eq!(out, serial, "forward_batch_in diverged from serial");
        }));
        cases.push(Case {
            name: "forward_batch_mlp256_b64".to_owned(),
            config: config.clone(),
            threads: Some(threads),
            summary,
            speedup_vs_naive: None,
        });
    }
}

fn jacobian_cases(runs: usize, cases: &mut Vec<Case>) {
    let mut rng = StdRng::seed_from_u64(29);
    let net = Network::mlp(&[49, 24, 24, 10], Activation::Relu, &mut rng);
    let ddnn = DecoupledNetwork::from_network(&net);
    let points: Vec<Vec<f64>> = (0..64)
        .map(|_| (0..49).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let pairs: Vec<(&[f64], &[f64])> = points.iter().map(|p| (&p[..], &p[..])).collect();
    let config = vec![
        ("net", Value::Str("mlp 49x24x24x10".to_owned())),
        ("points", Value::Num(pairs.len() as f64)),
        ("layer", Value::Num(1.0)),
    ];
    let serial = ddnn.value_param_jacobian_batch(1, &pairs);
    for threads in THREAD_SWEEP {
        let pool = ThreadPool::new(threads);
        let summary = summarize(time_runs(runs, || {
            let out = ddnn.value_param_jacobian_batch_in(&pool, 1, &pairs);
            assert_eq!(out, serial, "jacobian_batch_in diverged from serial");
        }));
        cases.push(Case {
            name: "jacobian_batch_mlp49_b64".to_owned(),
            config: config.clone(),
            threads: Some(threads),
            summary,
            speedup_vs_naive: None,
        });
    }
}

fn plane_regions_cases(runs: usize, cases: &mut Vec<Case>) {
    let mut rng = StdRng::seed_from_u64(9);
    // The bench_plane_regions headline workload: a deep ACAS-style slice.
    let net = Network::mlp(&[5, 24, 24, 24, 24, 24, 5], Activation::Relu, &mut rng);
    let square = vec![
        vec![-0.5, -0.5, 0.1, 0.2, 0.3],
        vec![0.5, -0.5, 0.1, 0.2, 0.3],
        vec![0.5, 0.5, 0.1, 0.2, 0.3],
        vec![-0.5, 0.5, 0.1, 0.2, 0.3],
    ];
    let serial_pool = ThreadPool::new(1);
    let serial = plane_regions_in(&serial_pool, &net, &square).unwrap();
    let config = vec![
        ("net", Value::Str("mlp 5x24^5x5".to_owned())),
        ("pieces", Value::Num(serial.len() as f64)),
    ];
    for threads in THREAD_SWEEP {
        let pool = ThreadPool::new(threads);
        let summary = summarize(time_runs(runs, || {
            let out = plane_regions_in(&pool, &net, &square).unwrap();
            assert_eq!(out, serial, "plane_regions_in diverged from serial");
        }));
        cases.push(Case {
            name: "plane_regions_acas_slice".to_owned(),
            config: config.clone(),
            threads: Some(threads),
            summary,
            speedup_vs_naive: None,
        });
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let runs = prdnn_bench::flag_value("--runs")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(if quick { MIN_RUNS } else { 9 })
        .max(MIN_RUNS);
    let out_path =
        prdnn_bench::flag_value("--out").unwrap_or_else(|| "BENCH_kernels.json".to_owned());
    let host_cores = std::thread::available_parallelism().map_or(0, |n| n.get());

    let mut cases = Vec::new();
    gemm_cases(runs, &mut cases);
    forward_batch_cases(runs, &mut cases);
    jacobian_cases(runs, &mut cases);
    plane_regions_cases(runs, &mut cases);

    for case in &cases {
        let threads = case
            .threads
            .map_or(String::new(), |t| format!(" threads={t}"));
        let speedup = case
            .speedup_vs_naive
            .map_or(String::new(), |s| format!(" speedup_vs_naive={s:.2}x"));
        eprintln!(
            "{:<28}{threads:<11} median {:>8.3} ms  iqr {:>7.3} ms{speedup}",
            case.name, case.summary.median_ms, case.summary.iqr_ms
        );
    }

    let doc = Value::obj([
        ("bench", Value::Str("kernelbench".to_owned())),
        ("runs_per_case", Value::Num(runs as f64)),
        ("host_cores", Value::Num(host_cores as f64)),
        (
            "note",
            Value::Str(
                "thread sweeps on a host with fewer cores than threads measure pool \
                 overhead, not speedup; compare threads>1 medians to threads=1 only \
                 when host_cores >= threads"
                    .to_owned(),
            ),
        ),
        (
            "cases",
            Value::Arr(cases.iter().map(case_to_json).collect()),
        ),
    ]);
    std::fs::write(&out_path, doc.to_json() + "\n").expect("write bench report");
    eprintln!("wrote {out_path} ({} cases, {runs} runs each)", cases.len());
}
