//! Regenerates Table 2 (Task 2: 1-D polytope repair vs fine-tuning).

use prdnn_bench::scale::{Scale, Task2Params};
use prdnn_bench::task2;

fn main() {
    prdnn_bench::apply_threads_arg();
    prdnn_bench::apply_pricing_arg();
    let scale = Scale::from_env();
    eprintln!("running Task 2 at scale {scale:?} (set PRDNN_SCALE=tiny|small|full to change)");
    let results = task2::run(&Task2Params::for_scale(scale));
    println!("{}", task2::format_table2(&results));
}
