//! Regenerates the §7.3 Task 3 results (2-D polytope ACAS-style repair).

use prdnn_bench::scale::{Scale, Task3Params};
use prdnn_bench::task3;

fn main() {
    prdnn_bench::apply_threads_arg();
    prdnn_bench::apply_pricing_arg();
    let scale = Scale::from_env();
    eprintln!("running Task 3 at scale {scale:?} (set PRDNN_SCALE=tiny|small|full to change)");
    let results = task3::run(&Task3Params::for_scale(scale));
    println!("{}", task3::format_task3(&results));
}
