//! Regenerates Figure 7 (per-layer drawdown and timing breakdown).

use prdnn_bench::scale::{Scale, Task1Params};
use prdnn_bench::task1;

fn main() {
    prdnn_bench::apply_threads_arg();
    prdnn_bench::apply_pricing_arg();
    let scale = Scale::from_env();
    eprintln!("running Task 1 at scale {scale:?} (set PRDNN_SCALE=tiny|small|full to change)");
    let mut params = Task1Params::for_scale(scale);
    // Figure 7 uses a single repair-set size (the paper's 400-point run).
    if let Some(&pair) = params
        .point_counts
        .iter()
        .rev()
        .nth(1)
        .or(params.point_counts.last())
    {
        params.point_counts = vec![pair];
    }
    let results = task1::run(&params);
    println!("{}", task1::format_figure7(&results));
}
