//! Task 2 (§7.2): 1-D polytope repair of the digit MLP on clean→foggy
//! interpolation lines.
//!
//! One run of [`run`] produces the data behind Table 2 (Provable Repair of
//! layers 2 and 3 vs FT[1]/FT[2]) and Table 3 (the MFT baselines), plus the
//! RQ4 timing breakdown quoted in §7.2.

use crate::metrics;
use crate::scale::Task2Params;
use prdnn_baselines::{fine_tune, modified_fine_tune, FineTuneConfig, MftConfig};
use prdnn_core::{
    repair_polytopes, InputPolytope, OutputPolytope, PolytopeSpec, RepairConfig, RepairError,
    RepairTiming,
};
use prdnn_datasets::{corruptions, digits};
use prdnn_nn::{Dataset, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// One repair line: a clean digit image, its fog-corrupted copy, and the
/// true label that every point on the segment between them must receive.
#[derive(Debug, Clone)]
pub struct RepairLine {
    /// The clean endpoint.
    pub clean: Vec<f64>,
    /// The fog-corrupted endpoint.
    pub foggy: Vec<f64>,
    /// The digit label.
    pub label: usize,
}

/// The trained digit MLP plus repair lines, generalization set, and drawdown
/// set.
#[derive(Debug, Clone)]
pub struct Task2Setup {
    /// The buggy network.
    pub network: Network,
    /// Candidate repair lines, misclassified-when-foggy ones first.
    pub lines: Vec<RepairLine>,
    /// Fog-corrupted test images (the generalization set).
    pub generalization_set: Dataset,
    /// Clean test images (the drawdown set).
    pub drawdown_set: Dataset,
}

/// Builds the Task 2 setup: train the MLP, corrupt the training images with
/// fog to form candidate lines, and corrupt the test set to form the
/// generalization set.
pub fn setup(params: &Task2Params) -> Task2Setup {
    let task = digits::digit_task(params.seed, params.train_size, params.test_size);
    let fog_image = |x: &[f64]| corruptions::fog(x, digits::SIDE, digits::SIDE, params.fog_alpha);

    let mut misclassified = Vec::new();
    let mut rest = Vec::new();
    for (x, &y) in task.train.inputs.iter().zip(&task.train.labels) {
        let foggy = fog_image(x);
        let line = RepairLine {
            clean: x.clone(),
            foggy: foggy.clone(),
            label: y,
        };
        if task.network.classify(&foggy) != y && task.network.classify(x) == y {
            misclassified.push(line);
        } else {
            rest.push(line);
        }
    }
    misclassified.extend(rest);

    let generalization_set = Dataset::new(
        task.test.inputs.iter().map(|x| fog_image(x)).collect(),
        task.test.labels.clone(),
    );
    Task2Setup {
        network: task.network,
        lines: misclassified,
        generalization_set,
        drawdown_set: task.test,
    }
}

/// Builds the polytope specification for the first `n_lines` lines.
pub fn line_spec(setup: &Task2Setup, n_lines: usize) -> PolytopeSpec {
    let mut spec = PolytopeSpec::new();
    for line in setup.lines.iter().take(n_lines) {
        spec.push(
            InputPolytope::segment(line.clean.clone(), line.foggy.clone()),
            OutputPolytope::classification(line.label, digits::NUM_CLASSES, 1e-4),
        );
    }
    spec
}

/// Result of Provable Polytope Repair on one layer / line-count combination.
#[derive(Debug, Clone)]
pub struct Task2PrResult {
    /// Repaired layer index (the paper's "Layer 2" is index 1, "Layer 3" is
    /// index 2 of the 3-layer MLP).
    pub layer: usize,
    /// The paper's line count this row corresponds to.
    pub paper_lines: usize,
    /// Lines actually used.
    pub lines_used: usize,
    /// Number of key points of the reduction (the "Points" column).
    pub key_points: usize,
    /// Drawdown on the clean test set.
    pub drawdown: f64,
    /// Generalization on the fogged test set.
    pub generalization: f64,
    /// Wall-clock time.
    pub time: Duration,
    /// Timing breakdown (LinRegions / Jacobians / LP / other).
    pub timing: RepairTiming,
    /// Whether the repair succeeded (it always does in the paper's Task 2).
    pub repaired: bool,
}

/// Runs Provable Polytope Repair of `layer` on the first `n_lines` lines.
pub fn run_pr(
    setup: &Task2Setup,
    paper_lines: usize,
    n_lines: usize,
    layer: usize,
) -> Task2PrResult {
    let spec = line_spec(setup, n_lines);
    let start = Instant::now();
    match repair_polytopes(&setup.network, layer, &spec, &RepairConfig::default()) {
        Ok(result) => Task2PrResult {
            layer,
            paper_lines,
            lines_used: n_lines,
            key_points: result.num_key_points,
            drawdown: metrics::drawdown(
                &setup.network,
                &result.outcome.repaired,
                &setup.drawdown_set,
            ),
            generalization: metrics::generalization(
                &setup.network,
                &result.outcome.repaired,
                &setup.generalization_set,
            ),
            time: start.elapsed(),
            timing: result.outcome.stats.timing,
            repaired: true,
        },
        Err(RepairError::Infeasible) | Err(_) => Task2PrResult {
            layer,
            paper_lines,
            lines_used: n_lines,
            key_points: 0,
            drawdown: f64::NAN,
            generalization: f64::NAN,
            time: start.elapsed(),
            timing: RepairTiming::default(),
            repaired: false,
        },
    }
}

/// Samples a finite repair set from the first `n_lines` lines for the
/// fine-tuning baselines (which cannot consume infinite specifications).
pub fn sampled_repair_set(
    setup: &Task2Setup,
    n_lines: usize,
    samples_per_line: usize,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for line in setup.lines.iter().take(n_lines) {
        let polytope = InputPolytope::segment(line.clean.clone(), line.foggy.clone());
        for p in polytope.sample(samples_per_line, &mut rng) {
            inputs.push(p);
            labels.push(line.label);
        }
    }
    Dataset::new(inputs, labels)
}

/// Result of one baseline (FT or MFT) run on Task 2.
#[derive(Debug, Clone)]
pub struct Task2BaselineResult {
    /// Baseline name.
    pub name: String,
    /// Fine-tuned layer, if the baseline is layer-restricted (MFT).
    pub layer: Option<usize>,
    /// Efficacy on its sampled repair set.
    pub efficacy: f64,
    /// Drawdown on the clean test set.
    pub drawdown: f64,
    /// Generalization on the fogged test set.
    pub generalization: f64,
    /// Wall-clock time.
    pub time: Duration,
}

/// Runs the FT baseline on a sampled repair set.
#[allow(clippy::too_many_arguments)]
pub fn run_ft(
    setup: &Task2Setup,
    n_lines: usize,
    samples_per_line: usize,
    name: &str,
    learning_rate: f64,
    batch_size: usize,
    max_epochs: usize,
    seed: u64,
) -> Task2BaselineResult {
    let repair_set = sampled_repair_set(setup, n_lines, samples_per_line, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf7);
    let config = FineTuneConfig {
        learning_rate,
        momentum: 0.9,
        batch_size,
        max_epochs,
    };
    let result = fine_tune(&setup.network, &repair_set, &config, &mut rng);
    Task2BaselineResult {
        name: name.to_string(),
        layer: None,
        efficacy: metrics::efficacy(&result.network, &repair_set),
        drawdown: metrics::drawdown(&setup.network, &result.network, &setup.drawdown_set),
        generalization: metrics::generalization(
            &setup.network,
            &result.network,
            &setup.generalization_set,
        ),
        time: result.duration,
    }
}

/// Runs the MFT baseline restricted to `layer` on a sampled repair set.
#[allow(clippy::too_many_arguments)]
pub fn run_mft(
    setup: &Task2Setup,
    n_lines: usize,
    samples_per_line: usize,
    name: &str,
    layer: usize,
    learning_rate: f64,
    batch_size: usize,
    max_epochs: usize,
    seed: u64,
) -> Task2BaselineResult {
    let repair_set = sampled_repair_set(setup, n_lines, samples_per_line, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x3b);
    let config = MftConfig {
        learning_rate,
        momentum: 0.9,
        batch_size,
        max_epochs,
        layer,
        change_penalty: 1e-3,
        holdout_fraction: 0.25,
    };
    let result = modified_fine_tune(&setup.network, &repair_set, &config, &mut rng);
    Task2BaselineResult {
        name: name.to_string(),
        layer: Some(layer),
        efficacy: result.efficacy,
        drawdown: metrics::drawdown(&setup.network, &result.network, &setup.drawdown_set),
        generalization: metrics::generalization(
            &setup.network,
            &result.network,
            &setup.generalization_set,
        ),
        time: result.duration,
    }
}

/// Results for one line count.
#[derive(Debug, Clone)]
pub struct Task2LineResult {
    /// Paper line count.
    pub paper_lines: usize,
    /// Lines used.
    pub lines_used: usize,
    /// PR on layer 2 (index 1) and layer 3 (index 2).
    pub pr: Vec<Task2PrResult>,
    /// FT[1], FT[2].
    pub ft: Vec<Task2BaselineResult>,
    /// MFT[1]/MFT[2] × layer 2/layer 3 (four entries).
    pub mft: Vec<Task2BaselineResult>,
}

/// All Task 2 results.
#[derive(Debug, Clone)]
pub struct Task2Results {
    /// Buggy accuracy on the drawdown (clean test) set — the paper's 96.5%.
    pub buggy_drawdown_accuracy: f64,
    /// Buggy accuracy on the generalization (fogged test) set — the paper's
    /// 19.5%.
    pub buggy_generalization_accuracy: f64,
    /// Per line-count results.
    pub rows: Vec<Task2LineResult>,
}

/// Runs the full Task 2 experiment.
pub fn run(params: &Task2Params) -> Task2Results {
    let setup = setup(params);
    // Layer 2 and layer 3 of the paper's 3-layer MLP are indices 1 and 2.
    let repair_layers = [1usize, 2usize];
    let samples_per_line = 10usize;
    let mut rows = Vec::new();
    for &(paper_lines, lines_used) in &params.line_counts {
        let lines_used = lines_used.min(setup.lines.len());
        let pr: Vec<Task2PrResult> = repair_layers
            .iter()
            .map(|&layer| run_pr(&setup, paper_lines, lines_used, layer))
            .collect();
        let ft = vec![
            run_ft(
                &setup,
                lines_used,
                samples_per_line,
                "FT[1]",
                0.05,
                16,
                params.ft_max_epochs,
                params.seed + 11,
            ),
            run_ft(
                &setup,
                lines_used,
                samples_per_line,
                "FT[2]",
                0.01,
                16,
                params.ft_max_epochs,
                params.seed + 12,
            ),
        ];
        let mut mft = Vec::new();
        for (name, lr) in [("MFT[1]", 0.05), ("MFT[2]", 0.01)] {
            for &layer in &repair_layers {
                mft.push(run_mft(
                    &setup,
                    lines_used,
                    samples_per_line,
                    name,
                    layer,
                    lr,
                    16,
                    params.ft_max_epochs,
                    params.seed + 13,
                ));
            }
        }
        rows.push(Task2LineResult {
            paper_lines,
            lines_used,
            pr,
            ft,
            mft,
        });
    }
    Task2Results {
        buggy_drawdown_accuracy: metrics::accuracy(&setup.network, &setup.drawdown_set),
        buggy_generalization_accuracy: metrics::accuracy(&setup.network, &setup.generalization_set),
        rows,
    }
}

fn pct(x: f64) -> String {
    if x.is_nan() {
        "  n/a".to_string()
    } else {
        format!("{:5.1}", 100.0 * x)
    }
}

/// Formats the Table 2 reproduction.
pub fn format_table2(results: &Task2Results) -> String {
    let mut out = String::new();
    out.push_str("Table 2 — Task 2: 1-D polytope repair of the digit MLP (paper: MNIST + fog)\n");
    out.push_str(&format!(
        "buggy accuracy: {:.1}% clean (drawdown set), {:.1}% fogged (generalization set)\n",
        100.0 * results.buggy_drawdown_accuracy,
        100.0 * results.buggy_generalization_accuracy
    ));
    out.push_str(
        "Lines(paper/used) | KeyPts | PR(L2) D%   G%        T | PR(L3) D%   G%        T | FT[1] D%   G% | FT[2] D%   G%\n",
    );
    for row in &results.rows {
        let l2 = &row.pr[0];
        let l3 = &row.pr[1];
        out.push_str(&format!(
            "{:>5}/{:<4} | {:>6} | {} {} {:>9} | {} {} {:>9} | {} {} | {} {}\n",
            row.paper_lines,
            row.lines_used,
            l2.key_points,
            pct(l2.drawdown),
            pct(l2.generalization),
            metrics::format_duration(l2.time),
            pct(l3.drawdown),
            pct(l3.generalization),
            metrics::format_duration(l3.time),
            pct(row.ft[0].drawdown),
            pct(row.ft[0].generalization),
            pct(row.ft[1].drawdown),
            pct(row.ft[1].generalization),
        ));
    }
    if let Some(last) = results.rows.last() {
        let l2 = &last.pr[0];
        out.push_str(&format!(
            "\nRQ4 timing breakdown for the largest configuration (layer 2): LinRegions {:.1}s, \
             Jacobians {:.1}s, LP {:.1}s, other {:.1}s\n",
            l2.timing.lin_regions.as_secs_f64(),
            l2.timing.jacobians.as_secs_f64(),
            l2.timing.lp.as_secs_f64(),
            l2.timing.other.as_secs_f64(),
        ));
    }
    out.push_str(
        "\nPaper (Table 2): PR drawdown 1.3–2.6% (layer 2) / 5.5–5.9% (layer 3) with 30–46%\n\
         generalization; FT drawdown up to 56% (even diverging once); most PR time is in the\n\
         LP solver.  Expected shape: PR repairs every line with positive generalization and\n\
         much lower drawdown than FT[1].\n",
    );
    out
}

/// Formats the Table 3 reproduction (MFT baselines).
pub fn format_table3(results: &Task2Results) -> String {
    let mut out = String::new();
    out.push_str("Table 3 — Task 2 modified fine-tuning baselines\n");
    out.push_str(
        "Lines(paper/used) | MFT[1]L2 E%  D%   G% | MFT[1]L3 E%  D%   G% | MFT[2]L2 E%  D%   G% | MFT[2]L3 E%  D%   G%\n",
    );
    for row in &results.rows {
        out.push_str(&format!("{:>5}/{:<4} |", row.paper_lines, row.lines_used));
        for entry in &row.mft {
            out.push_str(&format!(
                " {} {} {} |",
                pct(entry.efficacy),
                pct(entry.drawdown),
                pct(entry.generalization)
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "\nPaper (Table 3): MFT reaches at most ~71% efficacy, with <2% drawdown and far lower\n\
         generalization than Provable Repair — it trades efficacy for locality.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn tiny_task2_pipeline_runs_end_to_end() {
        let mut params = Task2Params::for_scale(Scale::Tiny);
        params.line_counts = vec![(10, 2)];
        params.ft_max_epochs = 5;
        let results = run(&params);
        assert_eq!(results.rows.len(), 1);
        let row = &results.rows[0];
        assert_eq!(row.pr.len(), 2);
        assert!(
            row.pr.iter().all(|r| r.repaired),
            "both layers should be repairable"
        );
        assert!(row.pr[0].key_points >= 2 * row.lines_used);
        assert_eq!(row.mft.len(), 4);
        assert!(format_table2(&results).contains("Table 2"));
        assert!(format_table3(&results).contains("Table 3"));
    }
}
