//! Evaluation metrics: efficacy, drawdown, and generalization (§7 "Terms
//! used").

use prdnn_core::DecoupledNetwork;
use prdnn_nn::{Dataset, Network};

/// Anything that maps an input to a class label — both plain networks
/// (fine-tuning baselines) and repaired DDNNs.
pub trait Classifier {
    /// Predicted class label for `input`.
    fn classify_point(&self, input: &[f64]) -> usize;

    /// Predicted class labels for a batch of inputs.
    ///
    /// The default maps [`Self::classify_point`]; implementations with a
    /// batched forward pass should override it.
    fn classify_batch(&self, inputs: &[Vec<f64>]) -> Vec<usize> {
        inputs.iter().map(|x| self.classify_point(x)).collect()
    }
}

impl Classifier for Network {
    fn classify_point(&self, input: &[f64]) -> usize {
        self.classify(input)
    }

    fn classify_batch(&self, inputs: &[Vec<f64>]) -> Vec<usize> {
        self.forward_batch(inputs)
            .iter()
            .map(|out| prdnn_linalg::argmax(out))
            .collect()
    }
}

impl Classifier for DecoupledNetwork {
    fn classify_point(&self, input: &[f64]) -> usize {
        self.classify(input)
    }
}

/// Classification accuracy of `model` on `data` (1.0 on an empty dataset).
pub fn accuracy(model: &impl Classifier, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let correct = model
        .classify_batch(&data.inputs)
        .iter()
        .zip(&data.labels)
        .filter(|(predicted, expected)| predicted == expected)
        .count();
    correct as f64 / data.len() as f64
}

/// Efficacy: accuracy of the repaired model on the repair set (Provable
/// Repair guarantees 100% by construction).
pub fn efficacy(repaired: &impl Classifier, repair_set: &Dataset) -> f64 {
    accuracy(repaired, repair_set)
}

/// Drawdown: accuracy of the buggy model on the drawdown set minus the
/// accuracy of the repaired model on it.  Lower is better.
pub fn drawdown(
    buggy: &impl Classifier,
    repaired: &impl Classifier,
    drawdown_set: &Dataset,
) -> f64 {
    accuracy(buggy, drawdown_set) - accuracy(repaired, drawdown_set)
}

/// Generalization: accuracy of the repaired model on the generalization set
/// minus the accuracy of the buggy model on it.  Higher is better.
pub fn generalization(
    buggy: &impl Classifier,
    repaired: &impl Classifier,
    generalization_set: &Dataset,
) -> f64 {
    accuracy(repaired, generalization_set) - accuracy(buggy, generalization_set)
}

/// Formats a duration as the paper does (e.g. `1m39.0s`, `21.2s`).
pub fn format_duration(d: std::time::Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 3600.0 {
        format!(
            "{}h{}m{:.1}s",
            secs as u64 / 3600,
            (secs as u64 % 3600) / 60,
            secs % 60.0
        )
    } else if secs >= 60.0 {
        format!("{}m{:.1}s", secs as u64 / 60, secs % 60.0)
    } else {
        format!("{secs:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_linalg::Matrix;
    use prdnn_nn::{Activation, Layer};
    use std::time::Duration;

    fn constant_classifier(label: usize, classes: usize) -> Network {
        // A linear network whose largest output is always `label`.
        let mut weights = Matrix::zeros(classes, 1);
        weights[(label, 0)] = 0.0;
        let mut bias = vec![0.0; classes];
        bias[label] = 1.0;
        Network::new(vec![Layer::dense(weights, bias, Activation::Identity)])
    }

    #[test]
    fn metrics_have_the_papers_signs() {
        let always0 = constant_classifier(0, 2);
        let always1 = constant_classifier(1, 2);
        let data = Dataset::new(
            vec![vec![0.0], vec![0.0], vec![0.0], vec![0.0]],
            vec![0, 0, 0, 1],
        );
        assert_eq!(accuracy(&always0, &data), 0.75);
        assert_eq!(accuracy(&always1, &data), 0.25);
        // "Repairing" from always0 to always1 on this set loses accuracy:
        // positive drawdown, negative generalization.
        assert_eq!(drawdown(&always0, &always1, &data), 0.5);
        assert_eq!(generalization(&always0, &always1, &data), -0.5);
        assert_eq!(efficacy(&always0, &Dataset::default()), 1.0);
    }

    #[test]
    fn duration_formatting_matches_paper_style() {
        assert_eq!(format_duration(Duration::from_secs_f64(21.23)), "21.2s");
        assert_eq!(format_duration(Duration::from_secs_f64(99.0)), "1m39.0s");
        assert_eq!(
            format_duration(Duration::from_secs_f64(3700.0)),
            "1h1m40.0s"
        );
    }
}
