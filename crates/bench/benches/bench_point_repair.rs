//! Micro-benchmark: Provable Point Repair (Algorithm 1) as the number of
//! repair points grows — the scaling dimension of Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prdnn_core::{paper_example, repair_points, LpBackend, PointSpec, PricingRule, RepairConfig};
use prdnn_nn::{Activation, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_point_repair(c: &mut Criterion) {
    // The paper's running example (Equation 2).
    let n1 = paper_example::n1();
    let eq2 = paper_example::equation_2_spec();
    c.bench_function("point_repair_running_example", |b| {
        b.iter(|| repair_points(&n1, 0, &eq2, &RepairConfig::default()).unwrap())
    });

    // A classifier with growing repair-set sizes.
    let mut rng = StdRng::seed_from_u64(3);
    let net = Network::mlp(&[10, 24, 16, 5], Activation::Relu, &mut rng);
    let mut group = c.benchmark_group("point_repair_classifier");
    for &n_points in &[4usize, 8, 16] {
        let points: Vec<Vec<f64>> = (0..n_points)
            .map(|_| (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let labels: Vec<usize> = (0..n_points).map(|i| i % 5).collect();
        let spec = PointSpec::from_classification(&points, &labels, 5, 1e-4);
        group.bench_with_input(BenchmarkId::from_parameter(n_points), &spec, |b, spec| {
            b.iter(|| repair_points(&net, 2, spec, &RepairConfig::default()).ok())
        });
    }
    group.finish();

    // Dense-tableau vs revised-simplex backends on a *wide* repair LP: a
    // wider classifier repaired at its last layer gives the block-sparse
    // shape the revised backend exists for (650 parameters -> ~1500 LP
    // columns, one block of 9-face rows per key point).
    let wide = Network::mlp(&[10, 48, 64, 10], Activation::Relu, &mut rng);
    let points: Vec<Vec<f64>> = (0..24)
        .map(|_| (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..24).map(|i| i % 10).collect();
    let spec = PointSpec::from_classification(&points, &labels, 10, 1e-4);
    let mut group = c.benchmark_group("point_repair_wide_lp_backend");
    for (name, backend, pricing) in [
        ("dense", LpBackend::DenseTableau, PricingRule::Auto),
        (
            "revised_dantzig",
            LpBackend::RevisedSparse,
            PricingRule::Dantzig,
        ),
        (
            "revised_devex",
            LpBackend::RevisedSparse,
            PricingRule::Devex,
        ),
    ] {
        let config = RepairConfig {
            lp_backend: backend,
            lp_pricing: pricing,
            ..RepairConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| repair_points(&wide, 2, spec, &config).ok())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_point_repair
}
criterion_main!(benches);
