//! Headline benchmark for the parallel SyReNN pipeline: `plane_regions`
//! and `lin_regions_batch` at 1/2/4 pool threads on the largest plane
//! workload (a deep ACAS-style slice that subdivides into thousands of
//! pieces).
//!
//! The 1-thread pool is the guaranteed serial path (it spawns no workers),
//! so `threads=1` vs `threads=N` is exactly the serial-vs-parallel
//! comparison recorded in the README; outputs are bit-identical across the
//! sweep by construction.

use criterion::{criterion_group, criterion_main, Criterion};
use prdnn_nn::{Activation, Network};
use prdnn_par::ThreadPool;
use prdnn_syrenn::{lin_regions_batch_in, plane_regions_in};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

fn bench_plane_regions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);

    // The largest plane workload: a deep, wide slice network in the style
    // of the ACAS Xu Task 3 inputs; the square subdivides into thousands of
    // polygon pieces by the last layer.
    let net = Network::mlp(&[5, 24, 24, 24, 24, 24, 5], Activation::Relu, &mut rng);
    let square = vec![
        vec![-0.5, -0.5, 0.1, 0.2, 0.3],
        vec![0.5, -0.5, 0.1, 0.2, 0.3],
        vec![0.5, 0.5, 0.1, 0.2, 0.3],
        vec![-0.5, 0.5, 0.1, 0.2, 0.3],
    ];
    {
        let pool = ThreadPool::new(1);
        let pieces = plane_regions_in(&pool, &net, &square).unwrap().len();
        eprintln!("plane_regions_large workload: {pieces} pieces");
    }
    for threads in THREAD_SWEEP {
        let pool = ThreadPool::new(threads);
        c.bench_function(&format!("plane_regions_large/threads={threads}"), |b| {
            b.iter(|| plane_regions_in(&pool, &net, &square).unwrap())
        });
    }

    // A slab of Task-2-style repair lines, fanned across the pool as one
    // batch (hundreds of independent segments).
    let line_net = Network::mlp(&[8, 24, 24, 24, 10], Activation::Relu, &mut rng);
    let lines: Vec<Vec<Vec<f64>>> = (0..256)
        .map(|_| {
            (0..2)
                .map(|_| (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect())
                .collect()
        })
        .collect();
    for threads in THREAD_SWEEP {
        let pool = ThreadPool::new(threads);
        c.bench_function(
            &format!("lin_regions_batch_256_lines/threads={threads}"),
            |b| b.iter(|| lin_regions_batch_in(&pool, &line_net, &lines).unwrap()),
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_plane_regions
}
criterion_main!(benches);
