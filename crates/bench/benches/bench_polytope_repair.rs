//! Micro-benchmark: Provable Polytope Repair (Algorithm 2) on 1-D lines
//! (Task 2 shape) and a 2-D polygon (Task 3 shape).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prdnn_core::{
    paper_example, repair_polytopes, InputPolytope, OutputPolytope, PolytopeSpec, RepairConfig,
};
use prdnn_datasets::{corruptions, digits};
use prdnn_nn::{Activation, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_polytope_repair(c: &mut Criterion) {
    let n1 = paper_example::n1();
    let eq3 = paper_example::equation_3_spec();
    c.bench_function("polytope_repair_running_example", |b| {
        b.iter(|| repair_polytopes(&n1, 0, &eq3, &RepairConfig::default()).unwrap())
    });

    // Fog lines through a digit-MLP-shaped network (untrained weights: the
    // algorithmic cost is identical and the benchmark stays deterministic).
    let mut rng = StdRng::seed_from_u64(17);
    let net = Network::mlp(&[digits::PIXELS, 16, 16, 10], Activation::Relu, &mut rng);
    let mut group = c.benchmark_group("polytope_repair_fog_lines");
    for &lines in &[1usize, 2] {
        let mut spec = PolytopeSpec::new();
        for class in 0..lines {
            let clean = digits::prototype(class);
            let foggy = corruptions::fog(&clean, digits::SIDE, digits::SIDE, 0.6);
            spec.push(
                InputPolytope::segment(clean, foggy),
                OutputPolytope::classification(class, 10, 1e-4),
            );
        }
        group.bench_with_input(BenchmarkId::from_parameter(lines), &spec, |b, spec| {
            b.iter(|| repair_polytopes(&net, 2, spec, &RepairConfig::default()).ok())
        });
    }
    group.finish();

    // A 2-D triangle through a small control-style network (Task 3 shape).
    let control = Network::mlp(&[5, 12, 12, 5], Activation::Relu, &mut rng);
    let triangle = InputPolytope::polygon(vec![
        vec![-0.5, -0.5, 0.0, 0.2, 0.2],
        vec![0.5, -0.5, 0.0, 0.2, 0.2],
        vec![0.0, 0.5, 0.0, 0.2, 0.2],
    ]);
    let mut spec = PolytopeSpec::new();
    spec.push(triangle, OutputPolytope::classification(0, 5, 1e-4));
    c.bench_function("polytope_repair_2d_slice", |b| {
        b.iter(|| repair_polytopes(&control, 2, &spec, &RepairConfig::default()).ok())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_polytope_repair
}
criterion_main!(benches);
