//! End-to-end table benchmarks: one tiny-scale Provable Repair per task, so
//! `cargo bench` exercises the full Table 1 / Table 2 / Task 3 pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use prdnn_bench::scale::{Scale, Task1Params, Task2Params, Task3Params};
use prdnn_bench::{task1, task2, task3};
use std::time::Duration;

fn bench_tables(c: &mut Criterion) {
    // Task 1 (Table 1 / Figure 7 pipeline): per-layer PR sweep on a tiny pool.
    let t1_setup = task1::setup(&Task1Params::for_scale(Scale::Tiny));
    c.bench_function("table1_pr_sweep_tiny", |b| {
        b.iter(|| task1::run_pr_sweep(&t1_setup, 4))
    });

    // Task 2 (Table 2 pipeline): polytope repair of layer 3 on two fog lines.
    let t2_params = Task2Params::for_scale(Scale::Tiny);
    let t2_setup = task2::setup(&t2_params);
    c.bench_function("table2_pr_two_lines_tiny", |b| {
        b.iter(|| task2::run_pr(&t2_setup, 10, 2, 2))
    });

    // Task 3 (§7.3 pipeline): 2-D polytope repair of the last layer.
    let t3_params = Task3Params::for_scale(Scale::Tiny);
    let t3_setup = task3::setup(&t3_params);
    c.bench_function("task3_pr_one_slice_tiny", |b| {
        b.iter(|| task3::run_pr(&t3_setup, t3_params.grid))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_secs(1));
    targets = bench_tables
}
criterion_main!(benches);
