//! Ablation: ℓ1 vs ℓ∞ repair objectives (the two norms supported by the
//! LP encoding, §2/§5).  The ℓ∞ lowering adds one auxiliary variable and two
//! rows per parameter, so it is expected to be slower on the same spec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prdnn_core::{repair_points, PointSpec, RepairConfig, RepairNorm};
use prdnn_nn::{Activation, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_norm_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(23);
    let net = Network::mlp(&[8, 16, 12, 4], Activation::Relu, &mut rng);
    let points: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let spec = PointSpec::from_classification(&points, &labels, 4, 1e-4);

    let mut group = c.benchmark_group("repair_norm_ablation");
    for (name, norm) in [("l1", RepairNorm::L1), ("linf", RepairNorm::LInf)] {
        let config = RepairConfig {
            norm,
            ..RepairConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| repair_points(&net, 2, &spec, config).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_norm_ablation
}
criterion_main!(benches);
