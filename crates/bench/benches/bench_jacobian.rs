//! Micro-benchmark: DDNN parameter-Jacobian computation (Algorithm 1 line 5),
//! the dominant cost of Task 1 in the paper (Figure 7b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prdnn_core::DecoupledNetwork;
use prdnn_nn::{Activation, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_jacobian(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let net = Network::mlp(&[49, 24, 24, 10], Activation::Relu, &mut rng);
    let ddnn = DecoupledNetwork::from_network(&net);
    let x: Vec<f64> = (0..49).map(|_| rng.gen_range(0.0..1.0)).collect();

    let mut group = c.benchmark_group("ddnn_param_jacobian");
    for layer in 0..3usize {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("layer{layer}")),
            &layer,
            |b, &layer| b.iter(|| ddnn.value_param_jacobian(layer, &x, &x)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_jacobian
}
criterion_main!(benches);
