//! Micro-benchmark: LinRegions computation (ExactLine and 2-D planes),
//! the SyReNN component of Algorithm 2.

use criterion::{criterion_group, criterion_main, Criterion};
use prdnn_datasets::{corruptions, digits};
use prdnn_nn::{Activation, Network};
use prdnn_syrenn::{line_regions, plane_regions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_linregions(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let net = Network::mlp(&[digits::PIXELS, 24, 24, 10], Activation::Relu, &mut rng);
    let clean = digits::prototype(3);
    let foggy = corruptions::fog(&clean, digits::SIDE, digits::SIDE, 0.6);

    c.bench_function("exact_line_digit_mlp", |b| {
        b.iter(|| line_regions(&net, &clean, &foggy).unwrap())
    });

    // Deep case: region computation cost should stay linear in depth now that
    // vertex values are propagated forward instead of recomputing the prefix.
    let deep = Network::mlp(
        &[digits::PIXELS, 16, 16, 16, 16, 16, 16, 16, 16, 10],
        Activation::Relu,
        &mut rng,
    );
    c.bench_function("exact_line_deep_mlp", |b| {
        b.iter(|| line_regions(&deep, &clean, &foggy).unwrap())
    });

    let small = Network::mlp(&[5, 16, 16, 5], Activation::Relu, &mut rng);
    let square = vec![
        vec![-0.5, -0.5, 0.1, 0.2, 0.3],
        vec![0.5, -0.5, 0.1, 0.2, 0.3],
        vec![0.5, 0.5, 0.1, 0.2, 0.3],
        vec![-0.5, 0.5, 0.1, 0.2, 0.3],
    ];
    c.bench_function("plane_regions_acas_style", |b| {
        b.iter(|| plane_regions(&small, &square).unwrap())
    });

    let deep_plane = Network::mlp(&[5, 12, 12, 12, 12, 12, 5], Activation::Relu, &mut rng);
    c.bench_function("plane_regions_deep", |b| {
        b.iter(|| plane_regions(&deep_plane, &square).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_linregions
}
criterion_main!(benches);
