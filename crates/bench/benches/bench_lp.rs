//! Micro-benchmark: the LP solver on repair-shaped programs
//! (free variables, ≤ constraints, ℓ1 objective), plus a head-to-head of
//! the dense flat-tableau and sparse revised simplex backends on the wide
//! block-sparse shape the repair LPs actually have.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prdnn_lp::{ConstraintOp, LpBackend, LpProblem, PricingRule, SolveOptions, VarKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn repair_shaped_lp(num_vars: usize, num_rows: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new();
    let vars = lp.add_vars(num_vars, VarKind::Free);
    // Feasible by construction: a witness point satisfies every row.
    let witness: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(-0.5..0.5)).collect();
    for _ in 0..num_rows {
        let coeffs: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let rhs: f64 =
            coeffs.iter().zip(&witness).map(|(c, w)| c * w).sum::<f64>() + rng.gen_range(0.01..0.5);
        let terms: Vec<_> = vars.iter().copied().zip(coeffs).collect();
        lp.add_constraint(&terms, ConstraintOp::Le, rhs);
    }
    lp.minimize_l1_of(&vars);
    lp
}

/// The shape of the paper's repair LPs: one block of rows per key point,
/// each row touching only that block's parameter slice (`block_vars` of
/// `num_blocks * block_vars` total variables), ℓ1 objective.
fn block_sparse_lp(
    num_blocks: usize,
    block_vars: usize,
    rows_per_block: usize,
    seed: u64,
) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new();
    let vars = lp.add_vars(num_blocks * block_vars, VarKind::Free);
    for block in 0..num_blocks {
        let slice = &vars[block * block_vars..(block + 1) * block_vars];
        for _ in 0..rows_per_block {
            let coeffs: Vec<f64> = (0..block_vars).map(|_| rng.gen_range(-1.0..1.0)).collect();
            // Feasible by construction around the origin, with a margin that
            // occasionally forces a non-zero repair.
            let rhs = rng.gen_range(-0.05..0.5f64);
            let terms: Vec<_> = slice.iter().copied().zip(coeffs).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, rhs);
        }
    }
    lp.minimize_l1_of(&vars);
    lp
}

fn solve_with(lp: &LpProblem, backend: LpBackend, pricing: PricingRule) {
    prdnn_lp::solve_with_options(
        lp,
        &SolveOptions {
            backend,
            max_iters: 2_000_000,
            pricing,
        },
    )
    .unwrap();
}

/// The three configurations every head-to-head group compares: the dense
/// oracle and the revised backend under both pricing rules.
const CONTENDERS: [(&str, LpBackend, PricingRule); 3] = [
    ("dense", LpBackend::DenseTableau, PricingRule::Auto),
    (
        "revised_dantzig",
        LpBackend::RevisedSparse,
        PricingRule::Dantzig,
    ),
    (
        "revised_devex",
        LpBackend::RevisedSparse,
        PricingRule::Devex,
    ),
];

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solve_l1");
    for &(vars, rows) in &[(20usize, 40usize), (60, 120), (120, 240)] {
        let lp = repair_shaped_lp(vars, rows, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}v_{rows}c")),
            &lp,
            |b, lp| b.iter(|| prdnn_lp::solve(lp).unwrap()),
        );
    }
    group.finish();

    // Backend/pricing head-to-head on the block-sparse repair shape
    // (wide: n ≫ m) — the programs the Devex partial pricing exists for.
    let mut group = c.benchmark_group("lp_backends_block_sparse");
    for &(blocks, bvars, brows) in &[(16usize, 8usize, 4usize), (32, 16, 4), (64, 16, 4)] {
        let lp = block_sparse_lp(blocks, bvars, brows, 11);
        let label = format!("{}v_{}c", blocks * bvars, blocks * brows);
        for (name, backend, pricing) in CONTENDERS {
            group.bench_with_input(BenchmarkId::new(name, &label), &lp, |b, lp| {
                b.iter(|| solve_with(lp, backend, pricing))
            });
        }
    }
    group.finish();

    // Same head-to-head on the fully dense repair-shaped programs, to keep
    // the Auto policy's crossover honest.
    let mut group = c.benchmark_group("lp_backends_dense_rows");
    for &(vars, rows) in &[(60usize, 120usize), (120, 240)] {
        let lp = repair_shaped_lp(vars, rows, 7);
        let label = format!("{vars}v_{rows}c");
        for (name, backend, pricing) in CONTENDERS {
            group.bench_with_input(BenchmarkId::new(name, &label), &lp, |b, lp| {
                b.iter(|| solve_with(lp, backend, pricing))
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_lp
}
criterion_main!(benches);
