//! Micro-benchmark: the LP solver on repair-shaped programs
//! (free variables, ≤ constraints, ℓ1 objective).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prdnn_lp::{ConstraintOp, LpProblem, VarKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn repair_shaped_lp(num_vars: usize, num_rows: usize, seed: u64) -> LpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lp = LpProblem::new();
    let vars = lp.add_vars(num_vars, VarKind::Free);
    // Feasible by construction: a witness point satisfies every row.
    let witness: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(-0.5..0.5)).collect();
    for _ in 0..num_rows {
        let coeffs: Vec<f64> = (0..num_vars).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let rhs: f64 =
            coeffs.iter().zip(&witness).map(|(c, w)| c * w).sum::<f64>() + rng.gen_range(0.01..0.5);
        let terms: Vec<_> = vars.iter().copied().zip(coeffs).collect();
        lp.add_constraint(&terms, ConstraintOp::Le, rhs);
    }
    lp.minimize_l1_of(&vars);
    lp
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_solve_l1");
    for &(vars, rows) in &[(20usize, 40usize), (60, 120), (120, 240)] {
        let lp = repair_shaped_lp(vars, rows, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{vars}v_{rows}c")),
            &lp,
            |b, lp| b.iter(|| prdnn_lp::solve(lp).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_lp
}
criterion_main!(benches);
