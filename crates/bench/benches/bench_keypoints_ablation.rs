//! Ablation: the Theorem 6.4 key-point reduction vs naive dense sampling.
//!
//! Polytope repair reduces an infinite specification to the vertices of the
//! network's linear regions.  The naive alternative — point repair on a
//! dense sample of the polytope — needs many more points to even approach
//! the same coverage *and still provides no guarantee*.  This ablation
//! measures the cost of both on the same specification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prdnn_core::{
    repair_points, repair_polytopes, InputPolytope, OutputPolytope, PointSpec, PolytopeSpec,
    RepairConfig,
};
use prdnn_nn::{Activation, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_keypoints_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(29);
    let net = Network::mlp(&[6, 16, 16, 3], Activation::Relu, &mut rng);
    let start = vec![-0.8, 0.3, -0.2, 0.5, 0.1, -0.4];
    let end = vec![0.7, -0.6, 0.4, -0.3, -0.2, 0.6];
    let segment = InputPolytope::segment(start.clone(), end.clone());
    let constraint = OutputPolytope::classification(1, 3, 1e-4);

    let mut group = c.benchmark_group("keypoints_vs_sampling");
    // Exact: vertices of the linear regions (provable).
    let mut polytope_spec = PolytopeSpec::new();
    polytope_spec.push(segment.clone(), constraint.clone());
    group.bench_function("exact_key_points", |b| {
        b.iter(|| repair_polytopes(&net, 2, &polytope_spec, &RepairConfig::default()).unwrap())
    });
    // Naive: dense uniform samples along the segment (no guarantee).
    for &samples in &[16usize, 64] {
        let points: Vec<Vec<f64>> = (0..samples)
            .map(|i| {
                let t = i as f64 / (samples - 1) as f64;
                start
                    .iter()
                    .zip(&end)
                    .map(|(s, e)| s + t * (e - s))
                    .collect()
            })
            .collect();
        let mut point_spec = PointSpec::new();
        for p in points {
            point_spec.push(p, constraint.clone());
        }
        group.bench_with_input(
            BenchmarkId::new("dense_sampling", samples),
            &point_spec,
            |b, spec| b.iter(|| repair_points(&net, 2, spec, &RepairConfig::default()).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench_keypoints_ablation
}
criterion_main!(benches);
