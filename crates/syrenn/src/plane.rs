//! 2-D plane restriction: `LinRegions(N, P)` for convex planar polygons.

use crate::transformer::{crosses, for_each_crossing, lerp, propagate, Crossing, TransformerState};
use crate::{LinearRegion, SyrennError, TOL};
use prdnn_nn::{CrossingSpec, Layer, Network};
use prdnn_par::ThreadPool;

/// A convex polygon whose vertices live in the network's input space but lie
/// in a common 2-D affine subspace, listed in boundary order.
type Polygon = Vec<Vec<f64>>;

/// One polygon piece of the subdivision, with per-vertex carried values
/// (the running network value / current-layer pre-activation).
struct Piece {
    verts: Polygon,
    vals: Vec<Vec<f64>>,
}

/// Pipeline state for a plane restriction: the current set of polygon
/// pieces, fanned across `pool` at every layer.
struct PolygonState<'p> {
    pieces: Vec<Piece>,
    pool: &'p ThreadPool,
}

impl TransformerState for PolygonState<'_> {
    fn process_layer(&mut self, layer: &Layer, spec: &CrossingSpec) {
        // Unlike the 1-D case, polygon pieces must be split one crossing
        // function at a time: a later crossing's zero set can cut the
        // sub-polygons created by an earlier one, so the splits compose
        // sequentially (values at created vertices are already carried).
        //
        // Splitting one piece never looks at another, so the composition is
        // applied *piece-major*: each input piece is pushed through the
        // whole layer — pre-activation, the layer's full crossing sequence,
        // activation — as one pool task, and the resulting sub-lists are
        // spliced back in input order.  The split order is exactly the
        // crossing-major order (splitting distributes over concatenation
        // and preserves it), so the output is bit-identical whether the
        // pieces are processed serially or in parallel — and the per-piece
        // double-buffered worklist touches two small local vectors instead
        // of reallocating the global piece list once per crossing function.
        let width = layer.preactivation_dim();
        let pieces = std::mem::take(&mut self.pieces);
        self.pieces = self
            .pool
            .par_map(pieces, |mut piece| {
                // Pooling pre-activations are the identity: the carried
                // values already are the pre-activation, so skip the copy.
                if !layer.preactivation_is_identity() {
                    piece.vals = layer.preactivation_batch(&piece.vals);
                }
                let mut sub = split_piece_by_layer(piece, spec, width);
                for piece in &mut sub {
                    piece.vals = layer.activate_batch(&piece.vals);
                }
                sub
            })
            .into_iter()
            .flatten()
            .collect();
    }
}

/// Splits one piece by every crossing function of a layer in sequence,
/// returning its final sub-pieces in split order.
fn split_piece_by_layer(piece: Piece, spec: &CrossingSpec, width: usize) -> Vec<Piece> {
    let mut cur = vec![piece];
    let mut next: Vec<Piece> = Vec::new();
    for_each_crossing(spec, width, |g| {
        next.reserve(cur.len());
        for p in cur.drain(..) {
            split_piece(p, g, &mut next);
        }
        std::mem::swap(&mut cur, &mut next);
    });
    cur
}

/// Splits one polygon piece by the zero set of `g` over its carried
/// pre-activations, pushing the non-degenerate sides onto `out`.
///
/// Crossing vertices interpolate both the polygon vertex and the carried
/// pre-activation — exact, because the network prefix is affine on the
/// closed piece.  Pieces that lie entirely on one side are moved, not
/// cloned.
fn split_piece(piece: Piece, g: Crossing, out: &mut Vec<Piece>) {
    // Allocation-free pre-pass: almost every (piece, crossing) pair lies
    // entirely on one side of the zero set, so decide that before
    // materialising the per-vertex crossing values.
    let mut strictly_positive = false;
    let mut strictly_negative = false;
    for z in &piece.vals {
        let v = g.eval(z);
        strictly_positive |= v > TOL;
        strictly_negative |= v < -TOL;
        if strictly_positive && strictly_negative {
            break;
        }
    }
    if !(strictly_positive && strictly_negative) {
        out.push(piece);
        return;
    }
    let values: Vec<f64> = piece.vals.iter().map(|z| g.eval(z)).collect();
    let n = piece.verts.len();
    let mut positive = Piece {
        verts: Vec::new(),
        vals: Vec::new(),
    };
    let mut negative = Piece {
        verts: Vec::new(),
        vals: Vec::new(),
    };
    for i in 0..n {
        let j = (i + 1) % n;
        let (gi, gj) = (values[i], values[j]);
        if gi >= -TOL {
            positive.verts.push(piece.verts[i].clone());
            positive.vals.push(piece.vals[i].clone());
        }
        if gi <= TOL {
            negative.verts.push(piece.verts[i].clone());
            negative.vals.push(piece.vals[i].clone());
        }
        // Edge crossing strictly between the two vertices.
        if crosses(gi, gj) {
            let alpha = gi / (gi - gj);
            let vert = lerp(&piece.verts[i], &piece.verts[j], alpha);
            let val = lerp(&piece.vals[i], &piece.vals[j], alpha);
            positive.verts.push(vert.clone());
            positive.vals.push(val.clone());
            negative.verts.push(vert);
            negative.vals.push(val);
        }
    }
    for side in [positive, negative] {
        if let Some(side) = non_degenerate(side) {
            out.push(side);
        }
    }
}

/// Removes consecutive duplicate vertices (keeping the carried values in
/// sync) and rejects polygons that have collapsed to fewer than three
/// distinct vertices.
fn non_degenerate(piece: Piece) -> Option<Piece> {
    let Piece { verts, vals } = piece;
    let mut kept = Piece {
        verts: Vec::with_capacity(verts.len()),
        vals: Vec::new(),
    };
    for (vert, val) in verts.into_iter().zip(vals) {
        if let Some(last) = kept.verts.last() {
            if prdnn_linalg::linf_distance(last, &vert) <= TOL {
                continue;
            }
        }
        kept.verts.push(vert);
        kept.vals.push(val);
    }
    if kept.verts.len() > 1
        && prdnn_linalg::linf_distance(&kept.verts[0], kept.verts.last().unwrap()) <= TOL
    {
        kept.verts.pop();
        kept.vals.pop();
    }
    if kept.verts.len() >= 3 {
        Some(kept)
    } else {
        None
    }
}

fn centroid(polygon: &Polygon) -> Vec<f64> {
    let dim = polygon[0].len();
    let mut c = vec![0.0; dim];
    for v in polygon {
        for (ci, vi) in c.iter_mut().zip(v) {
            *ci += vi;
        }
    }
    for ci in c.iter_mut() {
        *ci /= polygon.len() as f64;
    }
    c
}

/// Computes `LinRegions(N, P)` where `P` is the convex polygon spanned by
/// `vertices` (listed in boundary order, all lying in one 2-D affine
/// subspace of the input space).
///
/// The polygon is successively split by the crossing hyperplanes of each
/// layer; within every returned region the network is affine, so its
/// vertices are exactly the key points Algorithm 2 needs (Theorem 6.4).
///
/// The pieces are carried through the network incrementally — each layer's
/// affine map is applied once per surviving vertex and crossing vertices
/// interpolate the carried values (see [`crate::transformer`]) — so the cost
/// is linear, not quadratic, in network depth.
///
/// # Errors
///
/// Returns [`SyrennError::NotPiecewiseLinear`] for smooth networks and
/// [`SyrennError::DegenerateInput`] if fewer than three vertices are given.
///
/// # Panics
///
/// Panics if any vertex has the wrong dimension.
pub fn plane_regions(
    net: &Network,
    vertices: &[Vec<f64>],
) -> Result<Vec<LinearRegion>, SyrennError> {
    plane_regions_in(prdnn_par::global(), net, vertices)
}

/// [`plane_regions`] on an explicit thread pool.
///
/// The polygon pieces are fanned across `pool` at every layer (the affine
/// maps and the crossing splits are applied per piece in parallel, results
/// spliced back in input order), so the returned subdivision is
/// **bit-identical** for every thread count; a pool of 1 thread runs the
/// guaranteed serial path.
///
/// # Errors
///
/// See [`plane_regions`].
///
/// # Panics
///
/// Panics if any vertex has the wrong dimension.
pub fn plane_regions_in(
    pool: &ThreadPool,
    net: &Network,
    vertices: &[Vec<f64>],
) -> Result<Vec<LinearRegion>, SyrennError> {
    if vertices.len() < 3 {
        return Err(SyrennError::DegenerateInput);
    }
    for v in vertices {
        assert_eq!(
            v.len(),
            net.input_dim(),
            "plane_regions: vertex dimension mismatch"
        );
    }
    if !net.is_piecewise_linear() {
        return Err(SyrennError::NotPiecewiseLinear);
    }

    let mut state = PolygonState {
        pieces: vec![Piece {
            verts: vertices.to_vec(),
            vals: vertices.to_vec(),
        }],
        pool,
    };
    propagate(net, &mut state)?;

    Ok(state
        .pieces
        .into_iter()
        .map(|piece| LinearRegion {
            interior: centroid(&piece.verts),
            vertices: piece.verts,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_linalg::Matrix;
    use prdnn_nn::{Activation, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> Vec<Vec<f64>> {
        vec![
            vec![-1.0, -1.0],
            vec![1.0, -1.0],
            vec![1.0, 1.0],
            vec![-1.0, 1.0],
        ]
    }

    #[test]
    fn affine_network_has_one_region() {
        let net = Network::new(vec![Layer::dense(
            Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5]]),
            vec![0.3, -0.7],
            Activation::Identity,
        )]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].num_vertices(), 4);
    }

    #[test]
    fn single_relu_splits_square_in_two() {
        // z = x, ReLU: crossing at x = 0 splits the square into two halves.
        let net = Network::new(vec![
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, 0.0]]),
                vec![0.0],
                Activation::Relu,
            ),
            Layer::dense(
                Matrix::from_rows(&[vec![1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 2);
        let total_vertices: usize = regions.iter().map(LinearRegion::num_vertices).sum();
        assert_eq!(total_vertices, 8); // two quadrilaterals
    }

    #[test]
    fn two_relus_split_square_in_four() {
        // Units x and y: four quadrants.
        let net = Network::new(vec![
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]),
                vec![0.0, 0.0],
                Activation::Relu,
            ),
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, 1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 4);
    }

    #[test]
    fn regions_are_affine_and_cover_centroids() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::mlp(&[2, 10, 8, 3], Activation::Relu, &mut rng);
        let regions = plane_regions(&net, &square()).unwrap();
        assert!(!regions.is_empty());
        for region in &regions {
            // Affine within the region: f(centroid) == average of f(vertices)
            // weighted equally only holds for the centroid of the vertex set,
            // so check that instead via the affine-combination property.
            let k = region.vertices.len() as f64;
            let mean_output: Vec<f64> = {
                let mut acc = vec![0.0; net.output_dim()];
                for v in &region.vertices {
                    for (a, o) in acc.iter_mut().zip(net.forward(v)) {
                        *a += o / k;
                    }
                }
                acc
            };
            let centroid_output = net.forward(&region.interior);
            for (a, b) in mean_output.iter().zip(&centroid_output) {
                assert!((a - b).abs() < 1e-7, "region is not affine");
            }
        }
    }

    #[test]
    fn embedded_plane_in_higher_dimensional_input() {
        // A 2-D triangle embedded in a 4-D input space.
        let mut rng = StdRng::seed_from_u64(9);
        let net = Network::mlp(&[4, 8, 2], Activation::Relu, &mut rng);
        let triangle = vec![
            vec![0.0, 0.0, 1.0, -1.0],
            vec![2.0, 0.0, -1.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0],
        ];
        let regions = plane_regions(&net, &triangle).unwrap();
        assert!(!regions.is_empty());
        for region in &regions {
            assert!(region.num_vertices() >= 3);
            assert_eq!(region.interior.len(), 4);
        }
    }

    #[test]
    fn smooth_network_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::mlp(&[2, 4, 2], Activation::Sigmoid, &mut rng);
        assert_eq!(
            plane_regions(&net, &square()).unwrap_err(),
            SyrennError::NotPiecewiseLinear
        );
    }

    #[test]
    fn too_few_vertices_rejected() {
        let net = Network::new(vec![Layer::dense(
            Matrix::identity(2),
            vec![0.0, 0.0],
            Activation::Relu,
        )]);
        assert_eq!(
            plane_regions(&net, &[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap_err(),
            SyrennError::DegenerateInput
        );
    }

    #[test]
    fn pool_output_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(123);
        let net = Network::mlp(&[2, 12, 10, 8, 3], Activation::Relu, &mut rng);
        let serial_pool = ThreadPool::new(1);
        let serial = plane_regions_in(&serial_pool, &net, &square()).unwrap();
        assert!(serial.len() > 4, "workload should actually subdivide");
        for threads in [2, 3, 4] {
            let pool = ThreadPool::new(threads);
            let parallel = plane_regions_in(&pool, &net, &square()).unwrap();
            // Exact equality: same pieces, same order, same f64 bits.
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn split_piece_basic() {
        let verts = square();
        // Carried "pre-activations" are the vertices themselves; split by x.
        let piece = Piece {
            vals: verts.clone(),
            verts,
        };
        let mut out = Vec::new();
        split_piece(
            piece,
            Crossing::Unit {
                unit: 0,
                threshold: 0.0,
            },
            &mut out,
        );
        assert_eq!(out.len(), 2);
        for side in &out {
            assert_eq!(side.verts.len(), 4);
            assert_eq!(side.verts.len(), side.vals.len());
        }
        // All positive-part vertices have x >= 0, negative-part x <= 0.
        assert!(out[0].verts.iter().all(|v| v[0] >= -1e-9));
        assert!(out[1].verts.iter().all(|v| v[0] <= 1e-9));
        // Carried values at crossing vertices are interpolated consistently
        // with the geometry (they are equal here by construction).
        for side in &out {
            for (vert, val) in side.verts.iter().zip(&side.vals) {
                assert_eq!(vert, val);
            }
        }
    }
}
