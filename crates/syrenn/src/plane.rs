//! 2-D plane restriction: `LinRegions(N, P)` for convex planar polygons.

use crate::transformer::{crosses, for_each_crossing, propagate, Crossing, TransformerState};
use crate::{LinearRegion, SyrennError, TOL};
use prdnn_linalg::linf_distance;
use prdnn_nn::{CrossingSpec, FlatBatch, Layer, Network};
use prdnn_par::arena::Arena;
use prdnn_par::ThreadPool;
use std::cell::RefCell;

/// One polygon piece of the subdivision: vertex geometry and per-vertex
/// carried values (the running network value / current-layer
/// pre-activation), both batch-major so each layer's affine map is one
/// GEMM per piece.
struct Piece {
    verts: FlatBatch,
    vals: FlatBatch,
}

/// A piece addressed into the splitting scratch arenas: `n` vertices whose
/// geometry rows start at `verts` and carried rows at `vals`.
#[derive(Clone, Copy)]
struct PieceRef {
    verts: usize,
    vals: usize,
    n: usize,
}

/// Per-worker scratch for splitting one piece through one layer: two bump
/// arenas holding vertex/value rows and the double-buffered piece worklist.
/// Reset at the start of every piece task; after the first few pieces the
/// splitter runs with zero allocator traffic.
#[derive(Default)]
struct Scratch {
    verts: Arena<f64>,
    vals: Arena<f64>,
    cur: Vec<PieceRef>,
    next: Vec<PieceRef>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Pipeline state for a plane restriction: the current set of polygon
/// pieces, fanned across `pool` at every layer.
struct PolygonState<'p> {
    pieces: Vec<Piece>,
    pool: &'p ThreadPool,
}

impl TransformerState for PolygonState<'_> {
    fn process_layer(&mut self, layer: &Layer, spec: &CrossingSpec) {
        // Unlike the 1-D case, polygon pieces must be split one crossing
        // function at a time: a later crossing's zero set can cut the
        // sub-polygons created by an earlier one, so the splits compose
        // sequentially (values at created vertices are already carried).
        //
        // Splitting one piece never looks at another, so the composition is
        // applied *piece-major*: each input piece is pushed through the
        // whole layer — pre-activation, the layer's full crossing sequence,
        // activation — as one pool task, and the resulting sub-lists are
        // spliced back in input order.  The split order is exactly the
        // crossing-major order (splitting distributes over concatenation
        // and preserves it), so the output is bit-identical whether the
        // pieces are processed serially or in parallel — and the per-piece
        // double-buffered worklist touches two small local vectors instead
        // of reallocating the global piece list once per crossing function.
        let width = layer.preactivation_dim();
        let pieces = std::mem::take(&mut self.pieces);
        self.pieces = self
            .pool
            .par_map(pieces, |mut piece| {
                // Pooling pre-activations are the identity: the carried
                // values already are the pre-activation, so skip the copy.
                if !layer.preactivation_is_identity() {
                    piece.vals = layer.preactivation_batch_flat(&piece.vals);
                }
                let mut sub = split_piece_by_layer(piece, spec, width);
                for piece in &mut sub {
                    piece.vals = layer.activate_batch_flat(&piece.vals);
                }
                sub
            })
            .into_iter()
            .flatten()
            .collect();
    }
}

/// Splits one piece by every crossing function of a layer in sequence,
/// returning its final sub-pieces in split order.
///
/// All intermediate vertex/value rows live in the worker's thread-local
/// scratch arenas: one-sided pieces are moved by copying a [`PieceRef`]
/// (O(1), no row copies), split sides are appended at the arena tail, and
/// degenerate sides are rolled back with a truncate.  The arenas are reset
/// per piece task, so steady-state splitting does no heap allocation.
fn split_piece_by_layer(piece: Piece, spec: &CrossingSpec, width: usize) -> Vec<Piece> {
    if matches!(spec, CrossingSpec::None | CrossingSpec::NotPiecewiseLinear) {
        return vec![piece];
    }
    SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        let vd = piece.verts.dim();
        let wd = piece.vals.dim();
        s.verts.reset();
        s.vals.reset();
        s.cur.clear();
        s.next.clear();
        let verts = s.verts.extend_from_slice(piece.verts.as_slice());
        let vals = s.vals.extend_from_slice(piece.vals.as_slice());
        s.cur.push(PieceRef {
            verts,
            vals,
            n: piece.verts.count(),
        });
        for_each_crossing(spec, width, |g| {
            s.next.clear();
            for i in 0..s.cur.len() {
                let p = s.cur[i];
                split_piece(&mut s.verts, &mut s.vals, vd, wd, p, g, &mut s.next);
            }
            std::mem::swap(&mut s.cur, &mut s.next);
        });
        s.cur
            .iter()
            .map(|p| Piece {
                verts: FlatBatch::from_flat(vd, s.verts.slice(p.verts, p.n * vd)),
                vals: FlatBatch::from_flat(wd, s.vals.slice(p.vals, p.n * wd)),
            })
            .collect()
    })
}

/// Splits one polygon piece by the zero set of `g` over its carried
/// pre-activations, pushing the non-degenerate sides onto `out`.
///
/// Crossing vertices interpolate both the polygon vertex and the carried
/// pre-activation — exact, because the network prefix is affine on the
/// closed piece.  Pieces that lie entirely on one side are moved, not
/// cloned (their [`PieceRef`] is forwarded unchanged).
fn split_piece(
    verts: &mut Arena<f64>,
    vals: &mut Arena<f64>,
    vd: usize,
    wd: usize,
    p: PieceRef,
    g: Crossing,
    out: &mut Vec<PieceRef>,
) {
    // Copy-free pre-pass: almost every (piece, crossing) pair lies entirely
    // on one side of the zero set, so decide that before materialising any
    // new rows.  `g.eval` is O(1) (it indexes at most two entries), so the
    // per-vertex crossing values are recomputed where needed rather than
    // stored.
    let mut strictly_positive = false;
    let mut strictly_negative = false;
    for r in 0..p.n {
        let v = g.eval(vals.slice(p.vals + r * wd, wd));
        strictly_positive |= v > TOL;
        strictly_negative |= v < -TOL;
        if strictly_positive && strictly_negative {
            break;
        }
    }
    if !(strictly_positive && strictly_negative) {
        out.push(p);
        return;
    }
    for positive in [true, false] {
        if let Some(side) = emit_side(verts, vals, vd, wd, p, g, positive) {
            out.push(side);
        }
    }
}

/// Materialises one side of a split at the arena tail, deduplicating
/// consecutive coincident vertices online (the same semantics as filtering
/// with `linf_distance ≤ TOL` afterwards, including the first-vs-last wrap
/// check).  Returns `None` — after rolling the arenas back — when the side
/// collapses to fewer than three distinct vertices.
fn emit_side(
    verts: &mut Arena<f64>,
    vals: &mut Arena<f64>,
    vd: usize,
    wd: usize,
    p: PieceRef,
    g: Crossing,
    positive: bool,
) -> Option<PieceRef> {
    let (vmark, zmark) = (verts.len(), vals.len());
    let mut n = 0usize;
    for i in 0..p.n {
        let j = (i + 1) % p.n;
        let gi = g.eval(vals.slice(p.vals + i * wd, wd));
        let gj = g.eval(vals.slice(p.vals + j * wd, wd));
        let keep = if positive { gi >= -TOL } else { gi <= TOL };
        if keep {
            let cand = verts.len();
            verts.extend_from_within(p.verts + i * vd, vd);
            if dedupe(verts, vd, n, cand) {
                vals.extend_from_within(p.vals + i * wd, wd);
                n += 1;
            }
        }
        // Edge crossing strictly between the two vertices.
        if crosses(gi, gj) {
            let alpha = gi / (gi - gj);
            let cand = verts.len();
            verts.push_lerp(p.verts + i * vd, p.verts + j * vd, vd, alpha);
            if dedupe(verts, vd, n, cand) {
                vals.push_lerp(p.vals + i * wd, p.vals + j * wd, wd, alpha);
                n += 1;
            }
        }
    }
    // Wrap-around: the polygon is cyclic, so a last vertex coincident with
    // the first is the same duplicate case as two consecutive vertices.
    if n > 1
        && linf_distance(
            verts.slice(vmark, vd),
            verts.slice(vmark + (n - 1) * vd, vd),
        ) <= TOL
    {
        n -= 1;
        verts.truncate(vmark + n * vd);
        vals.truncate(zmark + n * wd);
    }
    if n >= 3 {
        Some(PieceRef {
            verts: vmark,
            vals: zmark,
            n,
        })
    } else {
        verts.truncate(vmark);
        vals.truncate(zmark);
        None
    }
}

/// Keeps the candidate vertex row at `cand` if it is farther than `TOL`
/// from the previously kept row (the row immediately before it); rolls it
/// back and returns `false` otherwise.
fn dedupe(verts: &mut Arena<f64>, vd: usize, n: usize, cand: usize) -> bool {
    if n > 0 && linf_distance(verts.slice(cand - vd, vd), verts.slice(cand, vd)) <= TOL {
        verts.truncate(cand);
        false
    } else {
        true
    }
}

fn centroid(polygon: &FlatBatch) -> Vec<f64> {
    let mut c = vec![0.0; polygon.dim()];
    for v in polygon.rows() {
        for (ci, vi) in c.iter_mut().zip(v) {
            *ci += vi;
        }
    }
    for ci in c.iter_mut() {
        *ci /= polygon.count() as f64;
    }
    c
}

/// Computes `LinRegions(N, P)` where `P` is the convex polygon spanned by
/// `vertices` (listed in boundary order, all lying in one 2-D affine
/// subspace of the input space).
///
/// The polygon is successively split by the crossing hyperplanes of each
/// layer; within every returned region the network is affine, so its
/// vertices are exactly the key points Algorithm 2 needs (Theorem 6.4).
///
/// The pieces are carried through the network incrementally — each layer's
/// affine map is applied once per surviving vertex and crossing vertices
/// interpolate the carried values (see [`crate::transformer`]) — so the cost
/// is linear, not quadratic, in network depth.
///
/// # Errors
///
/// Returns [`SyrennError::NotPiecewiseLinear`] for smooth networks and
/// [`SyrennError::DegenerateInput`] if fewer than three vertices are given.
///
/// # Panics
///
/// Panics if any vertex has the wrong dimension.
pub fn plane_regions(
    net: &Network,
    vertices: &[Vec<f64>],
) -> Result<Vec<LinearRegion>, SyrennError> {
    plane_regions_in(prdnn_par::global(), net, vertices)
}

/// [`plane_regions`] on an explicit thread pool.
///
/// The polygon pieces are fanned across `pool` at every layer (the affine
/// maps and the crossing splits are applied per piece in parallel, results
/// spliced back in input order), so the returned subdivision is
/// **bit-identical** for every thread count; a pool of 1 thread runs the
/// guaranteed serial path.
///
/// # Errors
///
/// See [`plane_regions`].
///
/// # Panics
///
/// Panics if any vertex has the wrong dimension.
pub fn plane_regions_in(
    pool: &ThreadPool,
    net: &Network,
    vertices: &[Vec<f64>],
) -> Result<Vec<LinearRegion>, SyrennError> {
    if vertices.len() < 3 {
        return Err(SyrennError::DegenerateInput);
    }
    for v in vertices {
        assert_eq!(
            v.len(),
            net.input_dim(),
            "plane_regions: vertex dimension mismatch"
        );
    }
    if !net.is_piecewise_linear() {
        return Err(SyrennError::NotPiecewiseLinear);
    }

    let flat = FlatBatch::from_rows(net.input_dim(), vertices);
    let mut state = PolygonState {
        pieces: vec![Piece {
            verts: flat.clone(),
            vals: flat,
        }],
        pool,
    };
    propagate(net, &mut state)?;

    Ok(state
        .pieces
        .into_iter()
        .map(|piece| LinearRegion {
            interior: centroid(&piece.verts),
            vertices: piece.verts.to_rows(),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_linalg::Matrix;
    use prdnn_nn::{Activation, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> Vec<Vec<f64>> {
        vec![
            vec![-1.0, -1.0],
            vec![1.0, -1.0],
            vec![1.0, 1.0],
            vec![-1.0, 1.0],
        ]
    }

    #[test]
    fn affine_network_has_one_region() {
        let net = Network::new(vec![Layer::dense(
            Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5]]),
            vec![0.3, -0.7],
            Activation::Identity,
        )]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].num_vertices(), 4);
    }

    #[test]
    fn single_relu_splits_square_in_two() {
        // z = x, ReLU: crossing at x = 0 splits the square into two halves.
        let net = Network::new(vec![
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, 0.0]]),
                vec![0.0],
                Activation::Relu,
            ),
            Layer::dense(
                Matrix::from_rows(&[vec![1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 2);
        let total_vertices: usize = regions.iter().map(LinearRegion::num_vertices).sum();
        assert_eq!(total_vertices, 8); // two quadrilaterals
    }

    #[test]
    fn two_relus_split_square_in_four() {
        // Units x and y: four quadrants.
        let net = Network::new(vec![
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]),
                vec![0.0, 0.0],
                Activation::Relu,
            ),
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, 1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 4);
    }

    #[test]
    fn regions_are_affine_and_cover_centroids() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::mlp(&[2, 10, 8, 3], Activation::Relu, &mut rng);
        let regions = plane_regions(&net, &square()).unwrap();
        assert!(!regions.is_empty());
        for region in &regions {
            // Affine within the region: f(centroid) == average of f(vertices)
            // weighted equally only holds for the centroid of the vertex set,
            // so check that instead via the affine-combination property.
            let k = region.vertices.len() as f64;
            let mean_output: Vec<f64> = {
                let mut acc = vec![0.0; net.output_dim()];
                for v in &region.vertices {
                    for (a, o) in acc.iter_mut().zip(net.forward(v)) {
                        *a += o / k;
                    }
                }
                acc
            };
            let centroid_output = net.forward(&region.interior);
            for (a, b) in mean_output.iter().zip(&centroid_output) {
                assert!((a - b).abs() < 1e-7, "region is not affine");
            }
        }
    }

    #[test]
    fn embedded_plane_in_higher_dimensional_input() {
        // A 2-D triangle embedded in a 4-D input space.
        let mut rng = StdRng::seed_from_u64(9);
        let net = Network::mlp(&[4, 8, 2], Activation::Relu, &mut rng);
        let triangle = vec![
            vec![0.0, 0.0, 1.0, -1.0],
            vec![2.0, 0.0, -1.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0],
        ];
        let regions = plane_regions(&net, &triangle).unwrap();
        assert!(!regions.is_empty());
        for region in &regions {
            assert!(region.num_vertices() >= 3);
            assert_eq!(region.interior.len(), 4);
        }
    }

    #[test]
    fn smooth_network_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::mlp(&[2, 4, 2], Activation::Sigmoid, &mut rng);
        assert_eq!(
            plane_regions(&net, &square()).unwrap_err(),
            SyrennError::NotPiecewiseLinear
        );
    }

    #[test]
    fn too_few_vertices_rejected() {
        let net = Network::new(vec![Layer::dense(
            Matrix::identity(2),
            vec![0.0, 0.0],
            Activation::Relu,
        )]);
        assert_eq!(
            plane_regions(&net, &[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap_err(),
            SyrennError::DegenerateInput
        );
    }

    #[test]
    fn pool_output_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(123);
        let net = Network::mlp(&[2, 12, 10, 8, 3], Activation::Relu, &mut rng);
        let serial_pool = ThreadPool::new(1);
        let serial = plane_regions_in(&serial_pool, &net, &square()).unwrap();
        assert!(serial.len() > 4, "workload should actually subdivide");
        for threads in [2, 3, 4] {
            let pool = ThreadPool::new(threads);
            let parallel = plane_regions_in(&pool, &net, &square()).unwrap();
            // Exact equality: same pieces, same order, same f64 bits.
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn split_piece_basic() {
        // Carried "pre-activations" are the vertices themselves; split by x.
        let flat = FlatBatch::from_rows(2, &square());
        let mut verts = Arena::new();
        let mut vals = Arena::new();
        let vstart = verts.extend_from_slice(flat.as_slice());
        let zstart = vals.extend_from_slice(flat.as_slice());
        let piece = PieceRef {
            verts: vstart,
            vals: zstart,
            n: flat.count(),
        };
        let mut out = Vec::new();
        split_piece(
            &mut verts,
            &mut vals,
            2,
            2,
            piece,
            Crossing::Unit {
                unit: 0,
                threshold: 0.0,
            },
            &mut out,
        );
        assert_eq!(out.len(), 2);
        for side in &out {
            assert_eq!(side.n, 4);
        }
        // All positive-part vertices have x >= 0, negative-part x <= 0.
        for (side, check) in out.iter().zip([|x: f64| x >= -1e-9, |x: f64| x <= 1e-9]) {
            for r in 0..side.n {
                let vert = verts.slice(side.verts + r * 2, 2);
                let val = vals.slice(side.vals + r * 2, 2);
                assert!(check(vert[0]));
                // Carried values at crossing vertices are interpolated
                // consistently with the geometry (equal by construction).
                assert_eq!(vert, val);
            }
        }
    }

    #[test]
    fn emit_side_rolls_back_degenerate_sides() {
        // A triangle tangent to the crossing at one vertex: the positive
        // side is the whole triangle, the negative side collapses to a
        // single point and must be rolled back without leaking arena rows.
        let tri = FlatBatch::from_rows(2, &[vec![0.0, 0.0], vec![1.0, 0.5], vec![1.0, -0.5]]);
        let mut verts = Arena::new();
        let mut vals = Arena::new();
        let vstart = verts.extend_from_slice(tri.as_slice());
        let zstart = vals.extend_from_slice(tri.as_slice());
        let piece = PieceRef {
            verts: vstart,
            vals: zstart,
            n: 3,
        };
        let g = Crossing::Unit {
            unit: 0,
            threshold: 0.0,
        };
        let before = verts.len();
        assert!(emit_side(&mut verts, &mut vals, 2, 2, piece, g, false).is_none());
        assert_eq!(verts.len(), before, "degenerate side must be rolled back");
        let side = emit_side(&mut verts, &mut vals, 2, 2, piece, g, true).unwrap();
        assert_eq!(side.n, 3);
    }
}
