//! 2-D plane restriction: `LinRegions(N, P)` for convex planar polygons.

use crate::{LinearRegion, SyrennError, TOL};
use prdnn_nn::{CrossingSpec, Network};

/// A convex polygon whose vertices live in the network's input space but lie
/// in a common 2-D affine subspace, listed in boundary order.
type Polygon = Vec<Vec<f64>>;

fn prefix_preactivation(net: &Network, point: &[f64], layer: usize) -> Vec<f64> {
    let mut v = point.to_vec();
    for l in 0..layer {
        v = net.layer(l).forward(&v);
    }
    net.layer(layer).preactivation(&v)
}

/// Splits a convex polygon by the zero set of an affine function whose value
/// at vertex `i` is `values[i]`.  Returns `(non_negative_part, non_positive_part)`;
/// either may be `None` if the polygon lies entirely on one side.
fn split_polygon(polygon: &Polygon, values: &[f64]) -> (Option<Polygon>, Option<Polygon>) {
    let all_nonneg = values.iter().all(|&v| v >= -TOL);
    let all_nonpos = values.iter().all(|&v| v <= TOL);
    if all_nonneg {
        return (Some(polygon.clone()), None);
    }
    if all_nonpos {
        return (None, Some(polygon.clone()));
    }
    let n = polygon.len();
    let mut positive: Polygon = Vec::new();
    let mut negative: Polygon = Vec::new();
    for i in 0..n {
        let j = (i + 1) % n;
        let (vi, vj) = (&polygon[i], &polygon[j]);
        let (gi, gj) = (values[i], values[j]);
        if gi >= -TOL {
            positive.push(vi.clone());
        }
        if gi <= TOL {
            negative.push(vi.clone());
        }
        // Edge crossing strictly between the two vertices.
        if (gi > TOL && gj < -TOL) || (gi < -TOL && gj > TOL) {
            let alpha = gi / (gi - gj);
            let crossing: Vec<f64> =
                vi.iter().zip(vj).map(|(a, b)| a + alpha * (b - a)).collect();
            positive.push(crossing.clone());
            negative.push(crossing);
        }
    }
    (non_degenerate(positive), non_degenerate(negative))
}

/// Removes consecutive duplicate vertices and rejects polygons that have
/// collapsed to fewer than three distinct vertices.
fn non_degenerate(mut polygon: Polygon) -> Option<Polygon> {
    polygon.dedup_by(|a, b| prdnn_linalg::linf_distance(a, b) <= TOL);
    if polygon.len() > 1
        && prdnn_linalg::linf_distance(&polygon[0], polygon.last().unwrap()) <= TOL
    {
        polygon.pop();
    }
    if polygon.len() >= 3 {
        Some(polygon)
    } else {
        None
    }
}

fn centroid(polygon: &Polygon) -> Vec<f64> {
    let dim = polygon[0].len();
    let mut c = vec![0.0; dim];
    for v in polygon {
        for (ci, vi) in c.iter_mut().zip(v) {
            *ci += vi;
        }
    }
    for ci in c.iter_mut() {
        *ci /= polygon.len() as f64;
    }
    c
}

/// Computes `LinRegions(N, P)` where `P` is the convex polygon spanned by
/// `vertices` (listed in boundary order, all lying in one 2-D affine
/// subspace of the input space).
///
/// The polygon is successively split by the crossing hyperplanes of each
/// layer; within every returned region the network is affine, so its
/// vertices are exactly the key points Algorithm 2 needs (Theorem 6.4).
///
/// # Errors
///
/// Returns [`SyrennError::NotPiecewiseLinear`] for smooth networks and
/// [`SyrennError::DegenerateInput`] if fewer than three vertices are given.
///
/// # Panics
///
/// Panics if any vertex has the wrong dimension.
pub fn plane_regions(
    net: &Network,
    vertices: &[Vec<f64>],
) -> Result<Vec<LinearRegion>, SyrennError> {
    if vertices.len() < 3 {
        return Err(SyrennError::DegenerateInput);
    }
    for v in vertices {
        assert_eq!(v.len(), net.input_dim(), "plane_regions: vertex dimension mismatch");
    }
    if !net.is_piecewise_linear() {
        return Err(SyrennError::NotPiecewiseLinear);
    }

    let mut polygons: Vec<Polygon> = vec![vertices.to_vec()];
    for layer_idx in 0..net.num_layers() {
        let spec = net.layer(layer_idx).crossing_spec();
        match &spec {
            CrossingSpec::None => continue,
            CrossingSpec::NotPiecewiseLinear => return Err(SyrennError::NotPiecewiseLinear),
            _ => {}
        }
        // Collect the crossing functions as index pairs/thresholds once; each
        // is applied to every polygon.
        let mut next: Vec<Polygon> = Vec::with_capacity(polygons.len());
        for polygon in polygons {
            let mut pieces: Vec<(Polygon, Vec<Vec<f64>>)> = vec![(
                polygon.clone(),
                polygon.iter().map(|v| prefix_preactivation(net, v, layer_idx)).collect(),
            )];
            let apply_crossing = |pieces: &mut Vec<(Polygon, Vec<Vec<f64>>)>,
                                  g: &dyn Fn(&[f64]) -> f64| {
                let mut out = Vec::with_capacity(pieces.len());
                for (poly, zs) in pieces.drain(..) {
                    let values: Vec<f64> = zs.iter().map(|z| g(z)).collect();
                    let (pos, neg) = split_polygon(&poly, &values);
                    for piece in [pos, neg].into_iter().flatten() {
                        // Recompute pre-activations at (possibly new) vertices;
                        // exact because the prefix is affine on the closed piece.
                        let zs: Vec<Vec<f64>> = piece
                            .iter()
                            .map(|v| prefix_preactivation(net, v, layer_idx))
                            .collect();
                        out.push((piece, zs));
                    }
                }
                *pieces = out;
            };
            match &spec {
                CrossingSpec::ElementwiseThresholds(thresholds) => {
                    let width = pieces[0].1[0].len();
                    for unit in 0..width {
                        for &thr in thresholds {
                            apply_crossing(&mut pieces, &|z: &[f64]| z[unit] - thr);
                        }
                    }
                }
                CrossingSpec::WindowPairs(windows) => {
                    for w in windows {
                        for (pos, &i) in w.iter().enumerate() {
                            for &j in &w[pos + 1..] {
                                apply_crossing(&mut pieces, &|z: &[f64]| z[i] - z[j]);
                            }
                        }
                    }
                }
                CrossingSpec::None | CrossingSpec::NotPiecewiseLinear => unreachable!(),
            }
            next.extend(pieces.into_iter().map(|(poly, _)| poly));
        }
        polygons = next;
    }

    Ok(polygons
        .into_iter()
        .map(|polygon| LinearRegion { interior: centroid(&polygon), vertices: polygon })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_linalg::Matrix;
    use prdnn_nn::{Activation, Layer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square() -> Vec<Vec<f64>> {
        vec![
            vec![-1.0, -1.0],
            vec![1.0, -1.0],
            vec![1.0, 1.0],
            vec![-1.0, 1.0],
        ]
    }

    #[test]
    fn affine_network_has_one_region() {
        let net = Network::new(vec![Layer::dense(
            Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5]]),
            vec![0.3, -0.7],
            Activation::Identity,
        )]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].num_vertices(), 4);
    }

    #[test]
    fn single_relu_splits_square_in_two() {
        // z = x, ReLU: crossing at x = 0 splits the square into two halves.
        let net = Network::new(vec![
            Layer::dense(Matrix::from_rows(&[vec![1.0, 0.0]]), vec![0.0], Activation::Relu),
            Layer::dense(Matrix::from_rows(&[vec![1.0]]), vec![0.0], Activation::Identity),
        ]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 2);
        let total_vertices: usize = regions.iter().map(LinearRegion::num_vertices).sum();
        assert_eq!(total_vertices, 8); // two quadrilaterals
    }

    #[test]
    fn two_relus_split_square_in_four() {
        // Units x and y: four quadrants.
        let net = Network::new(vec![
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]),
                vec![0.0, 0.0],
                Activation::Relu,
            ),
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, 1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ]);
        let regions = plane_regions(&net, &square()).unwrap();
        assert_eq!(regions.len(), 4);
    }

    #[test]
    fn regions_are_affine_and_cover_centroids() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::mlp(&[2, 10, 8, 3], Activation::Relu, &mut rng);
        let regions = plane_regions(&net, &square()).unwrap();
        assert!(!regions.is_empty());
        for region in &regions {
            // Affine within the region: f(centroid) == average of f(vertices)
            // weighted equally only holds for the centroid of the vertex set,
            // so check that instead via the affine-combination property.
            let k = region.vertices.len() as f64;
            let mean_output: Vec<f64> = {
                let mut acc = vec![0.0; net.output_dim()];
                for v in &region.vertices {
                    for (a, o) in acc.iter_mut().zip(net.forward(v)) {
                        *a += o / k;
                    }
                }
                acc
            };
            let centroid_output = net.forward(&region.interior);
            for (a, b) in mean_output.iter().zip(&centroid_output) {
                assert!((a - b).abs() < 1e-7, "region is not affine");
            }
        }
    }

    #[test]
    fn embedded_plane_in_higher_dimensional_input() {
        // A 2-D triangle embedded in a 4-D input space.
        let mut rng = StdRng::seed_from_u64(9);
        let net = Network::mlp(&[4, 8, 2], Activation::Relu, &mut rng);
        let triangle = vec![
            vec![0.0, 0.0, 1.0, -1.0],
            vec![2.0, 0.0, -1.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0],
        ];
        let regions = plane_regions(&net, &triangle).unwrap();
        assert!(!regions.is_empty());
        for region in &regions {
            assert!(region.num_vertices() >= 3);
            assert_eq!(region.interior.len(), 4);
        }
    }

    #[test]
    fn smooth_network_is_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::mlp(&[2, 4, 2], Activation::Sigmoid, &mut rng);
        assert_eq!(
            plane_regions(&net, &square()).unwrap_err(),
            SyrennError::NotPiecewiseLinear
        );
    }

    #[test]
    fn too_few_vertices_rejected() {
        let net = Network::new(vec![Layer::dense(
            Matrix::identity(2),
            vec![0.0, 0.0],
            Activation::Relu,
        )]);
        assert_eq!(
            plane_regions(&net, &[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap_err(),
            SyrennError::DegenerateInput
        );
    }

    #[test]
    fn split_polygon_basic() {
        let square = square();
        let values = vec![-1.0, 1.0, 1.0, -1.0]; // crossing x = 0 (values = x)
        let (pos, neg) = split_polygon(&square, &values);
        let pos = pos.unwrap();
        let neg = neg.unwrap();
        assert_eq!(pos.len(), 4);
        assert_eq!(neg.len(), 4);
        // All positive-part vertices have x >= 0 (values interpolate x).
        for v in &pos {
            assert!(v[0] >= -1e-9);
        }
        for v in &neg {
            assert!(v[0] <= 1e-9);
        }
    }
}
