//! Exact linear-region computation for piecewise-linear networks.
//!
//! This crate reimplements the part of SyReNN / ExactLine
//! (Sotoudeh & Thakur, NeurIPS 2019 / TACAS 2021) that the paper's polytope
//! repair algorithm depends on: computing `LinRegions(N, P)`, the partition
//! of a low-dimensional input polytope `P` into regions on which the PWL
//! network `N` is affine (§2 of the paper).
//!
//! Two cases are supported, matching the paper's evaluation:
//!
//! * [`line_regions`] — `P` is a 1-D segment (Task 2: clean→foggy image
//!   lines), computed by the ExactLine endpoint-subdivision algorithm;
//! * [`plane_regions`] — `P` is a 2-D convex polygon (Task 3: ACAS Xu input
//!   slices), computed by successive polygon splitting.
//!
//! Each returned [`LinearRegion`] carries its vertices (the key points that
//! Algorithm 2 feeds to point repair) and an interior point, which fixes the
//! activation pattern the repair must use for those vertices (Appendix B).
//!
//! # Example
//!
//! ```
//! use prdnn_linalg::Matrix;
//! use prdnn_nn::{Activation, Layer, Network};
//!
//! // A 1-D ReLU "hat" network: one kink at x = 0.
//! let net = Network::new(vec![
//!     Layer::dense(Matrix::from_rows(&[vec![1.0]]), vec![0.0], Activation::Relu),
//!     Layer::dense(Matrix::from_rows(&[vec![1.0]]), vec![0.0], Activation::Identity),
//! ]);
//! let regions = prdnn_syrenn::line_regions(&net, &[-1.0], &[1.0]).unwrap();
//! assert_eq!(regions.len(), 2);
//! ```

mod line;
mod plane;
mod transformer;

pub use line::{exact_line, line_regions};
pub use plane::{plane_regions, plane_regions_in};
use prdnn_par::ThreadPool;

/// Computes `LinRegions(N, P)` for a polytope given by its vertices,
/// dispatching on the polytope's dimension: two vertices form a segment
/// (ExactLine), three or more a convex planar polygon.
///
/// This is the single entry point Algorithm 2 needs; both cases run on the
/// shared incremental transformer pipeline (see [`line_regions`] /
/// [`plane_regions`] for the per-case documentation).
///
/// # Errors
///
/// Returns [`SyrennError::DegenerateInput`] for fewer than two vertices and
/// the errors of [`line_regions`] / [`plane_regions`] otherwise.
pub fn lin_regions(
    net: &prdnn_nn::Network,
    vertices: &[Vec<f64>],
) -> Result<Vec<LinearRegion>, SyrennError> {
    lin_regions_in(prdnn_par::global(), net, vertices)
}

/// [`lin_regions`] on an explicit thread pool.
///
/// Plane polytopes split their pieces across `pool`
/// ([`plane_regions_in`]); segments are a single sequential chain and use
/// no worker threads — batches of segments parallelise across polytopes via
/// [`lin_regions_batch_in`] instead.
///
/// # Errors
///
/// See [`lin_regions`].
pub fn lin_regions_in(
    pool: &ThreadPool,
    net: &prdnn_nn::Network,
    vertices: &[Vec<f64>],
) -> Result<Vec<LinearRegion>, SyrennError> {
    match vertices {
        [] | [_] => Err(SyrennError::DegenerateInput),
        [start, end] => line_regions(net, start, end),
        _ => plane_regions_in(pool, net, vertices),
    }
}

/// Computes `LinRegions(N, P)` for a whole slab of polytopes at once on the
/// [`prdnn_par::global`] pool.
///
/// See [`lin_regions_batch_in`].
///
/// # Errors
///
/// See [`lin_regions_batch_in`].
pub fn lin_regions_batch<P: AsRef<[Vec<f64>]> + Sync>(
    net: &prdnn_nn::Network,
    polytopes: &[P],
) -> Result<Vec<Vec<LinearRegion>>, SyrennError> {
    lin_regions_batch_in(prdnn_par::global(), net, polytopes)
}

/// Computes `LinRegions(N, P)` for every polytope in `polytopes`, fanning
/// the polytopes across `pool`.
///
/// This is the batched entry point for repair specifications that restrict
/// the network to many segments at once (the paper's Task 1/2 evaluate
/// hundreds of clean→corrupted lines): each polytope runs the sequential
/// pipeline independently on a pool worker.  Results are returned in input
/// order and each is identical to a standalone [`lin_regions`] call, for
/// every thread count.
///
/// # Errors
///
/// If any polytope fails, returns the error of the *first* failing polytope
/// (in input order), so the error too is deterministic under parallelism.
pub fn lin_regions_batch_in<P: AsRef<[Vec<f64>]> + Sync>(
    pool: &ThreadPool,
    net: &prdnn_nn::Network,
    polytopes: &[P],
) -> Result<Vec<Vec<LinearRegion>>, SyrennError> {
    let chunk_size = pool.even_chunk_size(polytopes.len());
    pool.par_chunks(polytopes, chunk_size, |chunk| {
        chunk
            .iter()
            .map(|vertices| lin_regions_in(pool, net, vertices.as_ref()))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Tolerance used when deduplicating subdivision points and deciding which
/// side of a crossing a value lies on.
pub(crate) const TOL: f64 = 1e-9;

/// One linear region of `LinRegions(N, P)`.
///
/// Within the region the network is affine; its vertices are the key points
/// used by the paper's polytope-to-point reduction (Algorithm 2, line 4),
/// and `interior` is a point in the region's relative interior whose
/// activation pattern identifies the affine piece (Appendix B).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegion {
    /// The region's vertices, as points in the network's input space.
    pub vertices: Vec<Vec<f64>>,
    /// A point in the relative interior of the region.
    pub interior: Vec<f64>,
}

impl LinearRegion {
    /// Number of vertices of the region.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }
}

/// Errors returned by the linear-region computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyrennError {
    /// The network uses a non-piecewise-linear activation (Tanh/Sigmoid);
    /// linear regions are not defined (§6's assumption on the DNN).
    NotPiecewiseLinear,
    /// The input polytope is degenerate (fewer than the required number of
    /// affinely independent vertices).
    DegenerateInput,
}

impl std::fmt::Display for SyrennError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyrennError::NotPiecewiseLinear => {
                write!(f, "network uses non-piecewise-linear activations")
            }
            SyrennError::DegenerateInput => write!(f, "input polytope is degenerate"),
        }
    }
}

impl std::error::Error for SyrennError {}
