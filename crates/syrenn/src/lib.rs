//! Exact linear-region computation for piecewise-linear networks.
//!
//! This crate reimplements the part of SyReNN / ExactLine
//! (Sotoudeh & Thakur, NeurIPS 2019 / TACAS 2021) that the paper's polytope
//! repair algorithm depends on: computing `LinRegions(N, P)`, the partition
//! of a low-dimensional input polytope `P` into regions on which the PWL
//! network `N` is affine (§2 of the paper).
//!
//! Two cases are supported, matching the paper's evaluation:
//!
//! * [`line_regions`] — `P` is a 1-D segment (Task 2: clean→foggy image
//!   lines), computed by the ExactLine endpoint-subdivision algorithm;
//! * [`plane_regions`] — `P` is a 2-D convex polygon (Task 3: ACAS Xu input
//!   slices), computed by successive polygon splitting.
//!
//! Each returned [`LinearRegion`] carries its vertices (the key points that
//! Algorithm 2 feeds to point repair) and an interior point, which fixes the
//! activation pattern the repair must use for those vertices (Appendix B).
//!
//! # Example
//!
//! ```
//! use prdnn_linalg::Matrix;
//! use prdnn_nn::{Activation, Layer, Network};
//!
//! // A 1-D ReLU "hat" network: one kink at x = 0.
//! let net = Network::new(vec![
//!     Layer::dense(Matrix::from_rows(&[vec![1.0]]), vec![0.0], Activation::Relu),
//!     Layer::dense(Matrix::from_rows(&[vec![1.0]]), vec![0.0], Activation::Identity),
//! ]);
//! let regions = prdnn_syrenn::line_regions(&net, &[-1.0], &[1.0]).unwrap();
//! assert_eq!(regions.len(), 2);
//! ```

mod line;
mod plane;
mod transformer;

pub use line::{exact_line, line_regions};
pub use plane::plane_regions;

/// Computes `LinRegions(N, P)` for a polytope given by its vertices,
/// dispatching on the polytope's dimension: two vertices form a segment
/// (ExactLine), three or more a convex planar polygon.
///
/// This is the single entry point Algorithm 2 needs; both cases run on the
/// shared incremental transformer pipeline (see [`line_regions`] /
/// [`plane_regions`] for the per-case documentation).
///
/// # Errors
///
/// Returns [`SyrennError::DegenerateInput`] for fewer than two vertices and
/// the errors of [`line_regions`] / [`plane_regions`] otherwise.
pub fn lin_regions(
    net: &prdnn_nn::Network,
    vertices: &[Vec<f64>],
) -> Result<Vec<LinearRegion>, SyrennError> {
    match vertices {
        [] | [_] => Err(SyrennError::DegenerateInput),
        [start, end] => line_regions(net, start, end),
        _ => plane_regions(net, vertices),
    }
}

/// Tolerance used when deduplicating subdivision points and deciding which
/// side of a crossing a value lies on.
pub(crate) const TOL: f64 = 1e-9;

/// One linear region of `LinRegions(N, P)`.
///
/// Within the region the network is affine; its vertices are the key points
/// used by the paper's polytope-to-point reduction (Algorithm 2, line 4),
/// and `interior` is a point in the region's relative interior whose
/// activation pattern identifies the affine piece (Appendix B).
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegion {
    /// The region's vertices, as points in the network's input space.
    pub vertices: Vec<Vec<f64>>,
    /// A point in the relative interior of the region.
    pub interior: Vec<f64>,
}

impl LinearRegion {
    /// Number of vertices of the region.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }
}

/// Errors returned by the linear-region computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyrennError {
    /// The network uses a non-piecewise-linear activation (Tanh/Sigmoid);
    /// linear regions are not defined (§6's assumption on the DNN).
    NotPiecewiseLinear,
    /// The input polytope is degenerate (fewer than the required number of
    /// affinely independent vertices).
    DegenerateInput,
}

impl std::fmt::Display for SyrennError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyrennError::NotPiecewiseLinear => {
                write!(f, "network uses non-piecewise-linear activations")
            }
            SyrennError::DegenerateInput => write!(f, "input polytope is degenerate"),
        }
    }
}

impl std::error::Error for SyrennError {}
