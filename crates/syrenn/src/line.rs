//! ExactLine: the restriction of a PWL network to a 1-D segment.

use crate::{LinearRegion, SyrennError, TOL};
use prdnn_nn::{CrossingSpec, Network};

/// Evaluates the prefix network (layers `0..layer`) at the point
/// `start + t · (end − start)` and returns the *pre-activation* of `layer`.
fn prefix_preactivation(net: &Network, start: &[f64], end: &[f64], t: f64, layer: usize) -> Vec<f64> {
    let mut v: Vec<f64> =
        start.iter().zip(end).map(|(s, e)| s + t * (e - s)).collect();
    for l in 0..layer {
        v = net.layer(l).forward(&v);
    }
    net.layer(layer).preactivation(&v)
}

/// Computes the endpoints (as parameters `t ∈ [0, 1]`) of the linear pieces
/// of `N` restricted to the segment from `start` to `end`.
///
/// The returned vector is sorted, starts with `0.0`, ends with `1.0`, and the
/// network is affine on every consecutive pair (this is the ExactLine
/// algorithm of Sotoudeh & Thakur 2019, which the paper uses to compute
/// `LinRegions(N, P)` for one-dimensional `P`).
///
/// # Errors
///
/// Returns [`SyrennError::NotPiecewiseLinear`] if any layer uses a smooth
/// activation, and [`SyrennError::DegenerateInput`] if `start == end`.
///
/// # Panics
///
/// Panics if `start.len()` or `end.len()` differ from the network's input
/// dimension.
pub fn exact_line(net: &Network, start: &[f64], end: &[f64]) -> Result<Vec<f64>, SyrennError> {
    assert_eq!(start.len(), net.input_dim(), "exact_line: start dimension mismatch");
    assert_eq!(end.len(), net.input_dim(), "exact_line: end dimension mismatch");
    if !net.is_piecewise_linear() {
        return Err(SyrennError::NotPiecewiseLinear);
    }
    if start.iter().zip(end).all(|(s, e)| (s - e).abs() <= TOL) {
        return Err(SyrennError::DegenerateInput);
    }

    let mut ts: Vec<f64> = vec![0.0, 1.0];
    for layer_idx in 0..net.num_layers() {
        let spec = net.layer(layer_idx).crossing_spec();
        if matches!(spec, CrossingSpec::None) {
            continue;
        }
        // Pre-activations of this layer at every current subdivision point.
        // Within each current interval the prefix network is affine, so the
        // pre-activation is affine in t there and crossings can be found by
        // linear interpolation of the endpoint values.
        let zs: Vec<Vec<f64>> = ts
            .iter()
            .map(|&t| prefix_preactivation(net, start, end, t, layer_idx))
            .collect();
        let mut new_ts: Vec<f64> = Vec::new();
        for i in 0..ts.len() - 1 {
            let (ta, tb) = (ts[i], ts[i + 1]);
            let (za, zb) = (&zs[i], &zs[i + 1]);
            let mut push_crossing = |ga: f64, gb: f64| {
                if (ga > TOL && gb < -TOL) || (ga < -TOL && gb > TOL) {
                    let alpha = ga / (ga - gb);
                    let t = ta + alpha * (tb - ta);
                    if t > ta + TOL && t < tb - TOL {
                        new_ts.push(t);
                    }
                }
            };
            match &spec {
                CrossingSpec::None => {}
                CrossingSpec::ElementwiseThresholds(thresholds) => {
                    for unit in 0..za.len() {
                        for &thr in thresholds {
                            push_crossing(za[unit] - thr, zb[unit] - thr);
                        }
                    }
                }
                CrossingSpec::WindowPairs(windows) => {
                    for w in windows {
                        for (pos, &i) in w.iter().enumerate() {
                            for &j in &w[pos + 1..] {
                                push_crossing(za[i] - za[j], zb[i] - zb[j]);
                            }
                        }
                    }
                }
                CrossingSpec::NotPiecewiseLinear => {
                    return Err(SyrennError::NotPiecewiseLinear);
                }
            }
        }
        ts.extend(new_ts);
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts.dedup_by(|a, b| (*a - *b).abs() <= TOL);
    }
    Ok(ts)
}

/// Computes `LinRegions(N, P)` for a 1-D segment `P` from `start` to `end`.
///
/// Each region is a sub-segment on which the network is affine; its vertices
/// are the two endpoints of the sub-segment and its interior point is the
/// midpoint.
///
/// # Errors
///
/// See [`exact_line`].
pub fn line_regions(
    net: &Network,
    start: &[f64],
    end: &[f64],
) -> Result<Vec<LinearRegion>, SyrennError> {
    let ts = exact_line(net, start, end)?;
    let point = |t: f64| -> Vec<f64> {
        start.iter().zip(end).map(|(s, e)| s + t * (e - s)).collect()
    };
    Ok(ts
        .windows(2)
        .map(|w| LinearRegion {
            vertices: vec![point(w[0]), point(w[1])],
            interior: point(0.5 * (w[0] + w[1])),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_linalg::Matrix;
    use prdnn_nn::{Activation, Layer, Pool2dLayer};

    /// The paper's running example N1 (Figure 3a).
    fn paper_n1() -> Network {
        Network::new(vec![
            Layer::dense(
                Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![1.0]]),
                vec![0.0, 0.0, -1.0],
                Activation::Relu,
            ),
            Layer::dense(
                Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ])
    }

    #[test]
    fn n1_linear_regions_match_equation_1() {
        // Equation (1): LinRegions(N1, [-1, 2]) = {[-1, 0], [0, 1], [1, 2]}.
        let net = paper_n1();
        let ts = exact_line(&net, &[-1.0], &[2.0]).unwrap();
        // t parameterises [-1, 2], so breakpoints at x = 0 and x = 1 are at
        // t = 1/3 and t = 2/3.
        assert_eq!(ts.len(), 4);
        assert!((ts[1] - 1.0 / 3.0).abs() < 1e-9);
        assert!((ts[2] - 2.0 / 3.0).abs() < 1e-9);

        let regions = line_regions(&net, &[-1.0], &[2.0]).unwrap();
        assert_eq!(regions.len(), 3);
        assert!((regions[0].vertices[0][0] + 1.0).abs() < 1e-9);
        assert!((regions[0].vertices[1][0] - 0.0).abs() < 1e-9);
        assert!((regions[1].vertices[1][0] - 1.0).abs() < 1e-9);
        assert!((regions[2].vertices[1][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn subsegment_of_one_region_is_not_subdivided() {
        let net = paper_n1();
        let ts = exact_line(&net, &[0.1], &[0.9]).unwrap();
        assert_eq!(ts, vec![0.0, 1.0]);
    }

    #[test]
    fn network_is_affine_within_each_region() {
        let net = paper_n1();
        let regions = line_regions(&net, &[-1.0], &[2.0]).unwrap();
        for region in regions {
            let a = &region.vertices[0];
            let b = &region.vertices[1];
            let fa = net.forward(a)[0];
            let fb = net.forward(b)[0];
            // Check the midpoint and quarter points are on the chord.
            for &alpha in &[0.25, 0.5, 0.75] {
                let p: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + alpha * (y - x)).collect();
                let expected = fa + alpha * (fb - fa);
                assert!((net.forward(&p)[0] - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multi_dimensional_line_through_random_relu_net() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let net = Network::mlp(&[4, 12, 12, 3], Activation::Relu, &mut rng);
        let start = vec![-1.0, 0.5, 2.0, -0.3];
        let end = vec![1.0, -0.5, -2.0, 0.3];
        let regions = line_regions(&net, &start, &end).unwrap();
        assert!(!regions.is_empty());
        // Exactness: in every region the function is affine along the segment.
        for region in &regions {
            let a = &region.vertices[0];
            let b = &region.vertices[1];
            let fa = net.forward(a);
            let fb = net.forward(b);
            let mid: Vec<f64> = a.iter().zip(b).map(|(x, y)| 0.5 * (x + y)).collect();
            let fmid = net.forward(&mid);
            for k in 0..fa.len() {
                assert!(
                    (fmid[k] - 0.5 * (fa[k] + fb[k])).abs() < 1e-7,
                    "region not affine"
                );
            }
        }
        // Regions tile the segment: consecutive regions share an endpoint.
        for w in regions.windows(2) {
            assert!(prdnn_linalg::approx_eq_slice(&w[0].vertices[1], &w[1].vertices[0], 1e-9));
        }
    }

    #[test]
    fn maxpool_crossings_are_found() {
        // 1 channel, 1x2 input, maxpool over the whole row: crossing when the
        // two inputs are equal.
        let net = Network::new(vec![Layer::MaxPool2d(Pool2dLayer {
            channels: 1,
            in_height: 1,
            in_width: 2,
            pool_h: 1,
            pool_w: 2,
            stride: 1,
        })]);
        // Along the segment (0, 1) -> (1, 0) the max switches at t = 0.5.
        let ts = exact_line(&net, &[0.0, 1.0], &[1.0, 0.0]).unwrap();
        assert_eq!(ts.len(), 3);
        assert!((ts[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn smooth_network_is_rejected() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::mlp(&[2, 4, 2], Activation::Tanh, &mut rng);
        assert_eq!(
            exact_line(&net, &[0.0, 0.0], &[1.0, 1.0]).unwrap_err(),
            SyrennError::NotPiecewiseLinear
        );
    }

    #[test]
    fn degenerate_segment_is_rejected() {
        let net = paper_n1();
        assert_eq!(
            exact_line(&net, &[0.5], &[0.5]).unwrap_err(),
            SyrennError::DegenerateInput
        );
    }
}
