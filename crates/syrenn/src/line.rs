//! ExactLine: the restriction of a PWL network to a 1-D segment.

use crate::transformer::{crosses, for_each_crossing, lerp, propagate, TransformerState};
use crate::{LinearRegion, SyrennError, TOL};
use prdnn_nn::{CrossingSpec, FlatBatch, Layer, Network};

/// Pipeline state for a segment: an ordered subdivision of `[0, 1]` whose
/// points carry their running network value.
///
/// The geometry of a subdivision point is just its parameter `t`; consecutive
/// points delimit the pieces.  Between layers `vals.row(i)` is the output of
/// the prefix network at `ts[i]`; during a layer it is that layer's
/// pre-activation.  The whole chain lives in one flat batch so each layer is
/// a single GEMM over every subdivision point.
struct ChainState {
    ts: Vec<f64>,
    vals: FlatBatch,
}

impl TransformerState for ChainState {
    fn process_layer(&mut self, layer: &Layer, spec: &CrossingSpec) {
        // Pooling pre-activations are the identity: the carried values
        // already are the pre-activation, so skip the copy.
        if !layer.preactivation_is_identity() {
            self.vals = layer.preactivation_batch_flat(&self.vals);
        }
        if !matches!(spec, CrossingSpec::None) {
            self.split(spec, layer.preactivation_dim());
        }
        self.vals = layer.activate_batch_flat(&self.vals);
    }
}

impl ChainState {
    /// Splits every interval of the chain at the crossings of one layer.
    fn split(&mut self, spec: &CrossingSpec, width: usize) {
        // All crossing functions are affine in the pre-activation, which is
        // itself affine in t on every current interval, so the crossings of
        // *every* unit can be located from the same interval endpoints in
        // one pass over the subdivision.
        let mut new_points: Vec<(usize, f64, Vec<f64>)> = Vec::new(); // (interval, t, z)
        let mut local: Vec<(f64, f64)> = Vec::new(); // (t, alpha) within one interval
        for i in 1..self.ts.len() {
            let (za, zb) = (self.vals.row(i - 1), self.vals.row(i));
            let (ta, tb) = (self.ts[i - 1], self.ts[i]);
            local.clear();
            for_each_crossing(spec, width, |g| {
                let (ga, gb) = (g.eval(za), g.eval(zb));
                if crosses(ga, gb) {
                    let alpha = ga / (ga - gb);
                    let t = ta + alpha * (tb - ta);
                    // Only crossings strictly inside the interval; ones
                    // within TOL of an endpoint are already represented.
                    if t > ta + TOL && t < tb - TOL {
                        local.push((t, alpha));
                    }
                }
            });
            local.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut last_t = f64::NEG_INFINITY;
            for &(t, alpha) in local.iter() {
                // Drop crossings of different units that coincide within TOL.
                if t - last_t > TOL {
                    last_t = t;
                    new_points.push((i, t, lerp(za, zb, alpha)));
                }
            }
        }
        if new_points.is_empty() {
            return;
        }
        let count = self.ts.len() + new_points.len();
        let mut ts: Vec<f64> = Vec::with_capacity(count);
        let mut vals = FlatBatch::with_capacity(self.vals.dim(), count);
        let mut next = new_points.into_iter().peekable();
        for i in 0..self.ts.len() {
            while next.peek().is_some_and(|&(interval, _, _)| interval == i) {
                let (_, t, z) = next.next().unwrap();
                ts.push(t);
                vals.push_row(&z);
            }
            ts.push(self.ts[i]);
            vals.push_row(self.vals.row(i));
        }
        self.ts = ts;
        self.vals = vals;
    }
}

/// Computes the endpoints (as parameters `t ∈ [0, 1]`) of the linear pieces
/// of `N` restricted to the segment from `start` to `end`.
///
/// The returned vector is sorted, starts with `0.0`, ends with `1.0`, and the
/// network is affine on every consecutive pair (this is the ExactLine
/// algorithm of Sotoudeh & Thakur 2019, which the paper uses to compute
/// `LinRegions(N, P)` for one-dimensional `P`).
///
/// The subdivision is carried through the network incrementally: each
/// layer's affine map is applied once per current subdivision point, and new
/// crossing points interpolate the carried values (see
/// [`crate::transformer`]), so the cost is linear — not quadratic — in
/// network depth.
///
/// # Errors
///
/// Returns [`SyrennError::NotPiecewiseLinear`] if any layer uses a smooth
/// activation, and [`SyrennError::DegenerateInput`] if `start == end`.
///
/// # Panics
///
/// Panics if `start.len()` or `end.len()` differ from the network's input
/// dimension.
pub fn exact_line(net: &Network, start: &[f64], end: &[f64]) -> Result<Vec<f64>, SyrennError> {
    assert_eq!(
        start.len(),
        net.input_dim(),
        "exact_line: start dimension mismatch"
    );
    assert_eq!(
        end.len(),
        net.input_dim(),
        "exact_line: end dimension mismatch"
    );
    if !net.is_piecewise_linear() {
        return Err(SyrennError::NotPiecewiseLinear);
    }
    if start.iter().zip(end).all(|(s, e)| (s - e).abs() <= TOL) {
        return Err(SyrennError::DegenerateInput);
    }

    let mut state = ChainState {
        ts: vec![0.0, 1.0],
        vals: FlatBatch::from_rows(net.input_dim(), &[start.to_vec(), end.to_vec()]),
    };
    propagate(net, &mut state)?;
    Ok(state.ts)
}

/// Computes `LinRegions(N, P)` for a 1-D segment `P` from `start` to `end`.
///
/// Each region is a sub-segment on which the network is affine; its vertices
/// are the two endpoints of the sub-segment and its interior point is the
/// midpoint.
///
/// # Errors
///
/// See [`exact_line`].
pub fn line_regions(
    net: &Network,
    start: &[f64],
    end: &[f64],
) -> Result<Vec<LinearRegion>, SyrennError> {
    let ts = exact_line(net, start, end)?;
    let point = |t: f64| -> Vec<f64> {
        start
            .iter()
            .zip(end)
            .map(|(s, e)| s + t * (e - s))
            .collect()
    };
    Ok(ts
        .windows(2)
        .map(|w| LinearRegion {
            vertices: vec![point(w[0]), point(w[1])],
            interior: point(0.5 * (w[0] + w[1])),
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_linalg::Matrix;
    use prdnn_nn::{Activation, Layer, Pool2dLayer};

    /// The paper's running example N1 (Figure 3a).
    fn paper_n1() -> Network {
        Network::new(vec![
            Layer::dense(
                Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![1.0]]),
                vec![0.0, 0.0, -1.0],
                Activation::Relu,
            ),
            Layer::dense(
                Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ])
    }

    #[test]
    fn n1_linear_regions_match_equation_1() {
        // Equation (1): LinRegions(N1, [-1, 2]) = {[-1, 0], [0, 1], [1, 2]}.
        let net = paper_n1();
        let ts = exact_line(&net, &[-1.0], &[2.0]).unwrap();
        // t parameterises [-1, 2], so breakpoints at x = 0 and x = 1 are at
        // t = 1/3 and t = 2/3.
        assert_eq!(ts.len(), 4);
        assert!((ts[1] - 1.0 / 3.0).abs() < 1e-9);
        assert!((ts[2] - 2.0 / 3.0).abs() < 1e-9);

        let regions = line_regions(&net, &[-1.0], &[2.0]).unwrap();
        assert_eq!(regions.len(), 3);
        assert!((regions[0].vertices[0][0] + 1.0).abs() < 1e-9);
        assert!((regions[0].vertices[1][0] - 0.0).abs() < 1e-9);
        assert!((regions[1].vertices[1][0] - 1.0).abs() < 1e-9);
        assert!((regions[2].vertices[1][0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn subsegment_of_one_region_is_not_subdivided() {
        let net = paper_n1();
        let ts = exact_line(&net, &[0.1], &[0.9]).unwrap();
        assert_eq!(ts, vec![0.0, 1.0]);
    }

    #[test]
    fn network_is_affine_within_each_region() {
        let net = paper_n1();
        let regions = line_regions(&net, &[-1.0], &[2.0]).unwrap();
        for region in regions {
            let a = &region.vertices[0];
            let b = &region.vertices[1];
            let fa = net.forward(a)[0];
            let fb = net.forward(b)[0];
            // Check the midpoint and quarter points are on the chord.
            for &alpha in &[0.25, 0.5, 0.75] {
                let p: Vec<f64> = a.iter().zip(b).map(|(x, y)| x + alpha * (y - x)).collect();
                let expected = fa + alpha * (fb - fa);
                assert!((net.forward(&p)[0] - expected).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multi_dimensional_line_through_random_relu_net() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(21);
        let net = Network::mlp(&[4, 12, 12, 3], Activation::Relu, &mut rng);
        let start = vec![-1.0, 0.5, 2.0, -0.3];
        let end = vec![1.0, -0.5, -2.0, 0.3];
        let regions = line_regions(&net, &start, &end).unwrap();
        assert!(!regions.is_empty());
        // Exactness: in every region the function is affine along the segment.
        for region in &regions {
            let a = &region.vertices[0];
            let b = &region.vertices[1];
            let fa = net.forward(a);
            let fb = net.forward(b);
            let mid: Vec<f64> = a.iter().zip(b).map(|(x, y)| 0.5 * (x + y)).collect();
            let fmid = net.forward(&mid);
            for k in 0..fa.len() {
                assert!(
                    (fmid[k] - 0.5 * (fa[k] + fb[k])).abs() < 1e-7,
                    "region not affine"
                );
            }
        }
        // Regions tile the segment: consecutive regions share an endpoint.
        for w in regions.windows(2) {
            assert!(prdnn_linalg::approx_eq_slice(
                &w[0].vertices[1],
                &w[1].vertices[0],
                1e-9
            ));
        }
    }

    #[test]
    fn maxpool_crossings_are_found() {
        // 1 channel, 1x2 input, maxpool over the whole row: crossing when the
        // two inputs are equal.
        let net = Network::new(vec![Layer::MaxPool2d(Pool2dLayer {
            channels: 1,
            in_height: 1,
            in_width: 2,
            pool_h: 1,
            pool_w: 2,
            stride: 1,
        })]);
        // Along the segment (0, 1) -> (1, 0) the max switches at t = 0.5.
        let ts = exact_line(&net, &[0.0, 1.0], &[1.0, 0.0]).unwrap();
        assert_eq!(ts.len(), 3);
        assert!((ts[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn carried_values_produce_exact_subdivision_on_a_deep_net() {
        // The incremental pipeline locates crossings from *interpolated*
        // carried values; if any interpolation were off, some subdivision
        // point would drift and the function would no longer be affine on
        // the interval between adjacent points.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let net = Network::mlp(&[3, 10, 10, 10, 2], Activation::Relu, &mut rng);
        let start = vec![-1.2, 0.7, 0.4];
        let end = vec![1.1, -0.9, -0.6];
        let ts = exact_line(&net, &start, &end).unwrap();
        assert!(
            ts.len() > 2,
            "a deep random net should subdivide the segment"
        );
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
        let point = |t: f64| -> Vec<f64> {
            start
                .iter()
                .zip(&end)
                .map(|(s, e)| s + t * (e - s))
                .collect()
        };
        for w in ts.windows(2) {
            let fa = net.forward(&point(w[0]));
            let fb = net.forward(&point(w[1]));
            for &alpha in &[0.25, 0.5, 0.75] {
                let fmid = net.forward(&point(w[0] + alpha * (w[1] - w[0])));
                for k in 0..fa.len() {
                    let expected = fa[k] + alpha * (fb[k] - fa[k]);
                    assert!(
                        (fmid[k] - expected).abs() < 1e-7,
                        "not affine between t = {} and t = {}",
                        w[0],
                        w[1]
                    );
                }
            }
        }
    }

    #[test]
    fn smooth_network_is_rejected() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::mlp(&[2, 4, 2], Activation::Tanh, &mut rng);
        assert_eq!(
            exact_line(&net, &[0.0, 0.0], &[1.0, 1.0]).unwrap_err(),
            SyrennError::NotPiecewiseLinear
        );
    }

    #[test]
    fn degenerate_segment_is_rejected() {
        let net = paper_n1();
        assert_eq!(
            exact_line(&net, &[0.5], &[0.5]).unwrap_err(),
            SyrennError::DegenerateInput
        );
    }
}
