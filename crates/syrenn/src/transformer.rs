//! The incremental SyReNN transformer pipeline.
//!
//! Both restriction algorithms ([`crate::line_regions`] and
//! [`crate::plane_regions`]) share the same structure: push the restricted
//! input set through the network **one layer at a time**, subdividing it at
//! every activation crossing so that each surviving piece lies inside a
//! single linear region of the prefix network.
//!
//! The key invariant maintained here is that every vertex *carries its
//! running network value* (the input to the next layer) alongside its
//! geometry.  Each layer's affine map is then applied **exactly once per
//! surviving vertex** ([`TransformerState::apply_preactivation`]), crossings
//! are located by interpolating the carried pre-activations along edges —
//! exact, because the prefix network is affine on every piece — and new
//! crossing vertices get *interpolated* values instead of a recomputation of
//! the whole network prefix.  This makes `LinRegions` linear in network
//! depth, where the previous implementation re-evaluated the full prefix for
//! every vertex at every layer (quadratic in depth).

use crate::SyrennError;
use prdnn_nn::{CrossingSpec, Layer, Network};

/// A set of pieces being pushed through the network, with per-vertex carried
/// values.
///
/// Between layers the carried value of a vertex is the post-activation
/// output of the prefix network at that vertex (i.e. the next layer's
/// input); while a layer is being processed it is that layer's
/// pre-activation.
pub(crate) trait TransformerState {
    /// Pushes the state through one layer, in three sub-steps:
    ///
    /// 1. replace every vertex's carried value `v` with the layer's
    ///    pre-activation `W v + b` (one affine application per vertex;
    ///    skipped when the pre-activation is the identity, i.e. pooling),
    /// 2. split every piece at the crossings described by `spec`, evaluated
    ///    on the carried pre-activations — new crossing vertices must
    ///    interpolate *both* the geometry and the carried pre-activation,
    /// 3. replace every carried pre-activation `z` with the activation
    ///    output `sigma(z)` (exact even at crossing vertices: the
    ///    activations are continuous, so their value at a piece boundary
    ///    does not depend on which adjacent piece the vertex is viewed
    ///    from).
    ///
    /// The three sub-steps are one method so that a state which fans its
    /// pieces across a thread pool can push each piece through the whole
    /// layer as a single task.
    fn process_layer(&mut self, layer: &Layer, spec: &CrossingSpec);
}

/// Drives a [`TransformerState`] through every layer of `net`.
///
/// The caller initialises the state with the input pieces (carried values
/// equal to the vertex positions) and reads the final subdivision out of the
/// state afterwards.  Propagation stops after the last crossing-capable
/// layer — trailing affine layers cannot subdivide further, so the carried
/// values are only advanced as far as the subdivision needs them.
pub(crate) fn propagate<S: TransformerState>(
    net: &Network,
    state: &mut S,
) -> Result<(), SyrennError> {
    let specs: Vec<CrossingSpec> = net.layers().iter().map(Layer::crossing_spec).collect();
    if specs
        .iter()
        .any(|s| matches!(s, CrossingSpec::NotPiecewiseLinear))
    {
        return Err(SyrennError::NotPiecewiseLinear);
    }
    // A trailing run of affine layers cannot introduce crossings, so the
    // subdivision is final once the last crossing-capable layer is done;
    // pushing values further would be wasted work.
    let Some(last_splitting) = specs.iter().rposition(|s| !matches!(s, CrossingSpec::None)) else {
        return Ok(());
    };
    for (layer, spec) in net.layers().iter().zip(&specs).take(last_splitting + 1) {
        state.process_layer(layer, spec);
    }
    Ok(())
}

/// One crossing function of a layer: an affine function of the
/// pre-activation whose zero set separates two linear pieces.
///
/// Because it is affine in `z` — and `z` is affine in the input on every
/// piece where the prefix network is affine — its zero set restricted to a
/// piece is a hyperplane, and its values interpolate linearly along edges.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Crossing {
    /// Element-wise activation: `z[unit] - threshold`.
    Unit {
        /// The pre-activation component.
        unit: usize,
        /// The activation breakpoint.
        threshold: f64,
    },
    /// Max-pooling: `z[i] - z[j]` for two entries of one window.
    Pair {
        /// First pre-activation index of the window pair.
        i: usize,
        /// Second pre-activation index of the window pair.
        j: usize,
    },
}

impl Crossing {
    /// Evaluates the crossing function on a pre-activation vector.
    #[inline]
    pub(crate) fn eval(&self, z: &[f64]) -> f64 {
        match *self {
            Crossing::Unit { unit, threshold } => z[unit] - threshold,
            Crossing::Pair { i, j } => z[i] - z[j],
        }
    }
}

/// Enumerates the crossing functions of a layer, calling `f` with each one.
pub(crate) fn for_each_crossing(spec: &CrossingSpec, width: usize, mut f: impl FnMut(Crossing)) {
    match spec {
        CrossingSpec::None | CrossingSpec::NotPiecewiseLinear => {}
        CrossingSpec::ElementwiseThresholds(thresholds) => {
            for unit in 0..width {
                for &threshold in thresholds {
                    f(Crossing::Unit { unit, threshold });
                }
            }
        }
        CrossingSpec::WindowPairs(windows) => {
            for w in windows {
                for (pos, &i) in w.iter().enumerate() {
                    for &j in &w[pos + 1..] {
                        f(Crossing::Pair { i, j });
                    }
                }
            }
        }
    }
}

/// Linear interpolation between two carried-value vectors.
pub(crate) fn lerp(a: &[f64], b: &[f64], alpha: f64) -> Vec<f64> {
    a.iter().zip(b).map(|(x, y)| x + alpha * (y - x)).collect()
}

/// Whether an affine function with endpoint values `ga`, `gb` crosses zero
/// strictly between the endpoints (shared by the chain and polygon
/// splitters so the two stay tolerance-consistent).
#[inline]
pub(crate) fn crosses(ga: f64, gb: f64) -> bool {
    (ga > crate::TOL && gb < -crate::TOL) || (ga < -crate::TOL && gb > crate::TOL)
}
