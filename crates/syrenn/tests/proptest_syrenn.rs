//! Property-based equivalence tests for the incremental transformer
//! pipeline.
//!
//! The incremental `line_regions` / `plane_regions` carry vertex values
//! forward layer by layer; the straightforward reference implementations
//! below instead recompute the network prefix from scratch for every vertex
//! at every layer (the pre-refactor algorithm).  On random small
//! ReLU/MaxPool networks the two must produce equivalent region sets: the
//! same number of regions, matching subdivision points, exact affinity of
//! the network inside each region, and a union that covers the input
//! polytope's vertices.

use prdnn_nn::{Activation, CrossingSpec, Layer, Network, Pool2dLayer};
use prdnn_syrenn::{exact_line, plane_regions, LinearRegion};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-9;

/// Reference ExactLine: recomputes the prefix pre-activation from the input
/// for every subdivision point at every layer (the pre-refactor algorithm).
fn ref_exact_line(net: &Network, start: &[f64], end: &[f64]) -> Vec<f64> {
    let prefix_preact = |t: f64, layer: usize| -> Vec<f64> {
        let mut v: Vec<f64> = start
            .iter()
            .zip(end)
            .map(|(s, e)| s + t * (e - s))
            .collect();
        for l in 0..layer {
            v = net.layer(l).forward(&v);
        }
        net.layer(layer).preactivation(&v)
    };
    let mut ts: Vec<f64> = vec![0.0, 1.0];
    for layer_idx in 0..net.num_layers() {
        let spec = net.layer(layer_idx).crossing_spec();
        if matches!(spec, CrossingSpec::None) {
            continue;
        }
        let zs: Vec<Vec<f64>> = ts.iter().map(|&t| prefix_preact(t, layer_idx)).collect();
        let mut new_ts: Vec<f64> = Vec::new();
        for i in 0..ts.len() - 1 {
            let (ta, tb) = (ts[i], ts[i + 1]);
            let (za, zb) = (&zs[i], &zs[i + 1]);
            let mut push_crossing = |ga: f64, gb: f64| {
                if (ga > TOL && gb < -TOL) || (ga < -TOL && gb > TOL) {
                    let alpha = ga / (ga - gb);
                    let t = ta + alpha * (tb - ta);
                    if t > ta + TOL && t < tb - TOL {
                        new_ts.push(t);
                    }
                }
            };
            match &spec {
                CrossingSpec::ElementwiseThresholds(thresholds) => {
                    for unit in 0..za.len() {
                        for &thr in thresholds {
                            push_crossing(za[unit] - thr, zb[unit] - thr);
                        }
                    }
                }
                CrossingSpec::WindowPairs(windows) => {
                    for w in windows {
                        for (pos, &i) in w.iter().enumerate() {
                            for &j in &w[pos + 1..] {
                                push_crossing(za[i] - za[j], zb[i] - zb[j]);
                            }
                        }
                    }
                }
                CrossingSpec::None | CrossingSpec::NotPiecewiseLinear => unreachable!(),
            }
        }
        ts.extend(new_ts);
        ts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ts.dedup_by(|a, b| (*a - *b).abs() <= TOL);
    }
    ts
}

/// Reference plane restriction: successive polygon splitting with the prefix
/// pre-activation recomputed at every vertex of every piece (the
/// pre-refactor algorithm).
type Polygon = Vec<Vec<f64>>;
type CrossingFn = Box<dyn Fn(&[f64]) -> f64>;

fn ref_plane_regions(net: &Network, vertices: &[Vec<f64>]) -> Vec<Polygon> {
    let prefix_preact = |point: &[f64], layer: usize| -> Vec<f64> {
        let mut v = point.to_vec();
        for l in 0..layer {
            v = net.layer(l).forward(&v);
        }
        net.layer(layer).preactivation(&v)
    };
    fn non_degenerate(mut polygon: Polygon) -> Option<Polygon> {
        polygon.dedup_by(|a, b| prdnn_linalg::linf_distance(a, b) <= TOL);
        if polygon.len() > 1
            && prdnn_linalg::linf_distance(&polygon[0], polygon.last().unwrap()) <= TOL
        {
            polygon.pop();
        }
        if polygon.len() >= 3 {
            Some(polygon)
        } else {
            None
        }
    }
    fn split(polygon: &[Vec<f64>], values: &[f64]) -> (Option<Polygon>, Option<Polygon>) {
        if values.iter().all(|&v| v >= -TOL) {
            return (Some(polygon.to_vec()), None);
        }
        if values.iter().all(|&v| v <= TOL) {
            return (None, Some(polygon.to_vec()));
        }
        let n = polygon.len();
        let (mut positive, mut negative) = (Vec::new(), Vec::new());
        for i in 0..n {
            let j = (i + 1) % n;
            let (gi, gj) = (values[i], values[j]);
            if gi >= -TOL {
                positive.push(polygon[i].clone());
            }
            if gi <= TOL {
                negative.push(polygon[i].clone());
            }
            if (gi > TOL && gj < -TOL) || (gi < -TOL && gj > TOL) {
                let alpha = gi / (gi - gj);
                let crossing: Vec<f64> = polygon[i]
                    .iter()
                    .zip(&polygon[j])
                    .map(|(a, b)| a + alpha * (b - a))
                    .collect();
                positive.push(crossing.clone());
                negative.push(crossing);
            }
        }
        (non_degenerate(positive), non_degenerate(negative))
    }

    let mut polygons: Vec<Polygon> = vec![vertices.to_vec()];
    for layer_idx in 0..net.num_layers() {
        let spec = net.layer(layer_idx).crossing_spec();
        if matches!(spec, CrossingSpec::None) {
            continue;
        }
        let mut crossings: Vec<CrossingFn> = Vec::new();
        match &spec {
            CrossingSpec::ElementwiseThresholds(thresholds) => {
                for unit in 0..net.layer(layer_idx).preactivation_dim() {
                    for &thr in thresholds {
                        crossings.push(Box::new(move |z: &[f64]| z[unit] - thr));
                    }
                }
            }
            CrossingSpec::WindowPairs(windows) => {
                for w in windows {
                    for (pos, &i) in w.iter().enumerate() {
                        for &j in &w[pos + 1..] {
                            crossings.push(Box::new(move |z: &[f64]| z[i] - z[j]));
                        }
                    }
                }
            }
            CrossingSpec::None | CrossingSpec::NotPiecewiseLinear => unreachable!(),
        }
        for g in &crossings {
            let mut next: Vec<Polygon> = Vec::with_capacity(polygons.len());
            for polygon in polygons {
                let values: Vec<f64> = polygon
                    .iter()
                    .map(|v| g(&prefix_preact(v, layer_idx)))
                    .collect();
                let (pos, neg) = split(&polygon, &values);
                next.extend([pos, neg].into_iter().flatten());
            }
            polygons = next;
        }
    }
    polygons
}

/// A random PWL network: dense ReLU layers, optionally with a max-pool
/// layer spliced in the middle.
fn random_pwl_net(seed: u64, input_dim: usize, with_pool: bool) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    if with_pool {
        let mut weights = |rows: usize, cols: usize| {
            prdnn_linalg::Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
        };
        Network::new(vec![
            Layer::dense(
                weights(4, input_dim),
                vec![0.1, -0.2, 0.0, 0.3],
                Activation::Relu,
            ),
            Layer::MaxPool2d(Pool2dLayer {
                channels: 1,
                in_height: 1,
                in_width: 4,
                pool_h: 1,
                pool_w: 2,
                stride: 2,
            }),
            Layer::dense(weights(2, 2), vec![0.0, 0.0], Activation::Identity),
        ])
    } else {
        Network::mlp(&[input_dim, 6, 5, 2], Activation::Relu, &mut rng)
    }
}

/// Asserts the network is affine on a region by comparing the mean of the
/// vertex outputs with the output at the vertex centroid.
fn assert_region_affine(net: &Network, region: &LinearRegion) {
    let k = region.vertices.len() as f64;
    let mut mean = vec![0.0; net.output_dim()];
    for v in &region.vertices {
        for (m, o) in mean.iter_mut().zip(net.forward(v)) {
            *m += o / k;
        }
    }
    let centroid = net.forward(&region.interior);
    for (a, b) in mean.iter().zip(&centroid) {
        assert!((a - b).abs() < 1e-7, "network is not affine on the region");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_exact_line_matches_reference(
        seed in 0u64..10_000,
        with_pool in prop_oneof![Just(false), Just(true)],
        coords in prop::collection::vec(-1.5..1.5f64, 6),
    ) {
        let net = random_pwl_net(seed, 3, with_pool);
        let (start, end) = (&coords[..3], &coords[3..]);
        prop_assume!(start.iter().zip(end).any(|(s, e)| (s - e).abs() > 1e-6));
        let incremental = exact_line(&net, start, end).unwrap();
        let reference = ref_exact_line(&net, start, end);
        prop_assert_eq!(
            incremental.len(),
            reference.len(),
            "different subdivision size: {:?} vs {:?}",
            &incremental,
            &reference
        );
        for (a, b) in incremental.iter().zip(&reference) {
            prop_assert!((a - b).abs() < 1e-7, "subdivision points diverge: {} vs {}", a, b);
        }
        // The subdivision covers the whole segment.
        prop_assert_eq!(incremental[0], 0.0);
        prop_assert_eq!(*incremental.last().unwrap(), 1.0);
    }

    #[test]
    fn incremental_plane_regions_match_reference(
        seed in 0u64..10_000,
        with_pool in prop_oneof![Just(false), Just(true)],
        radius in 0.5..1.5f64,
    ) {
        let net = random_pwl_net(seed, 2, with_pool);
        let square = vec![
            vec![-radius, -radius],
            vec![radius, -radius],
            vec![radius, radius],
            vec![-radius, radius],
        ];
        let regions = plane_regions(&net, &square).unwrap();
        let reference = ref_plane_regions(&net, &square);
        // Same partition size as the straightforward implementation.
        prop_assert_eq!(regions.len(), reference.len());
        // The network is affine on every returned region.
        for region in &regions {
            assert_region_affine(&net, region);
        }
        // The union of the regions covers the input polygon: every input
        // vertex reappears as a vertex of some region.
        for corner in &square {
            prop_assert!(
                regions.iter().any(|r| r
                    .vertices
                    .iter()
                    .any(|v| prdnn_linalg::linf_distance(v, corner) < 1e-7)),
                "input vertex {:?} not covered",
                corner
            );
        }
        // Total vertex mass matches the reference subdivision as well.
        let total: usize = regions.iter().map(LinearRegion::num_vertices).sum();
        let ref_total: usize = reference.iter().map(Vec::len).sum();
        prop_assert_eq!(total, ref_total);
    }
}
