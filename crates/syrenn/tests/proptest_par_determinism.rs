//! Determinism of the parallel SyReNN paths: for random networks and every
//! thread count, `plane_regions_in` / `lin_regions_batch_in` must return
//! output that is piece-for-piece, vertex-for-vertex **bit-identical** to
//! the serial path (a 1-thread pool, which spawns no workers).
//!
//! This is the property the repair algorithms rely on when they fan work
//! across the pool: parallelism may only change wall-clock time, never a
//! single f64 bit of the subdivision.

use prdnn_nn::{Activation, Network};
use prdnn_par::ThreadPool;
use prdnn_syrenn::{lin_regions, lin_regions_batch_in, plane_regions_in};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Thread counts exercised against the serial baseline: the boundary case
/// (2), an odd count, and more threads than this container has cores.
const THREAD_COUNTS: [usize; 3] = [2, 3, 4];

fn random_net(seed: u64, depth: usize, width: usize, in_dim: usize) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sizes = vec![in_dim];
    sizes.extend(std::iter::repeat_n(width, depth));
    sizes.push(3);
    Network::mlp(&sizes, Activation::Relu, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn plane_regions_is_bit_identical_across_thread_counts(
        seed in 0u64..10_000,
        depth in 1usize..4,
        width in 4usize..14,
        scale in 0.3..1.5f64,
    ) {
        let net = random_net(seed, depth, width, 2);
        let square = vec![
            vec![-scale, -scale],
            vec![scale, -scale],
            vec![scale, scale],
            vec![-scale, scale],
        ];
        let serial_pool = ThreadPool::new(1);
        let serial = plane_regions_in(&serial_pool, &net, &square).unwrap();
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let parallel = plane_regions_in(&pool, &net, &square).unwrap();
            // `LinearRegion` is PartialEq over raw f64s: this is exact
            // bit-equality of every vertex of every piece, in order.
            prop_assert_eq!(&parallel, &serial, "threads = {}", threads);
        }
    }

    #[test]
    fn forward_batch_in_is_bit_identical_across_thread_counts(
        seed in 0u64..10_000,
        depth in 1usize..4,
        width in 4usize..14,
        batch in 1usize..24,
    ) {
        let net = random_net(seed, depth, width, 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A5A);
        let inputs: Vec<Vec<f64>> = (0..batch)
            .map(|_| (0..3).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect();
        // The serial reference is the per-point forward; the pooled batch
        // path routes through the flat GEMM kernels and must agree bitwise
        // at every thread count (including 1, which spawns no workers).
        let expected: Vec<Vec<f64>> = inputs.iter().map(|x| net.forward(x)).collect();
        for threads in [1, 2, 3, 4] {
            let pool = ThreadPool::new(threads);
            let batched = net.forward_batch_in(&pool, &inputs);
            prop_assert_eq!(&batched, &expected, "threads = {}", threads);
        }
    }

    #[test]
    fn lin_regions_batch_is_bit_identical_to_one_at_a_time_calls(
        seed in 0u64..10_000,
        depth in 1usize..4,
        width in 4usize..14,
        num_lines in 1usize..12,
    ) {
        let net = random_net(seed, depth, width, 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        // A slab of segments plus one polygon, as a repair spec would build.
        let mut polytopes: Vec<Vec<Vec<f64>>> = (0..num_lines)
            .map(|_| {
                (0..2)
                    .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
                    .collect()
            })
            .collect();
        polytopes.push(vec![
            vec![-0.8, -0.8, 0.1],
            vec![0.8, -0.8, 0.1],
            vec![0.0, 0.9, 0.1],
        ]);

        let expected: Vec<_> = polytopes
            .iter()
            .map(|p| lin_regions(&net, p).unwrap())
            .collect();
        let serial_pool = ThreadPool::new(1);
        prop_assert_eq!(
            &lin_regions_batch_in(&serial_pool, &net, &polytopes).unwrap(),
            &expected
        );
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let batched = lin_regions_batch_in(&pool, &net, &polytopes).unwrap();
            prop_assert_eq!(&batched, &expected, "threads = {}", threads);
        }
    }
}
