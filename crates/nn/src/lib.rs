//! Feed-forward DNN substrate for the PRDNN reproduction.
//!
//! This crate plays the role PyTorch plays in the paper's artifact: it
//! defines networks (Definition 2.1), evaluates them (Definition 2.2),
//! exposes their activation patterns (Definition 2.5), computes exact
//! vector–Jacobian products against layer parameters (used by Algorithm 1),
//! and trains them with SGD (used only to produce the "buggy" evaluation
//! networks and the fine-tuning baselines).
//!
//! The supported layer types mirror the networks in the paper's evaluation:
//! fully-connected layers (MNIST MLP, ACAS Xu), convolutional layers and
//! max/average pooling (SqueezeNet-style image classifier), with ReLU,
//! LeakyReLU, HardTanh, Tanh, Sigmoid and Identity activations.
//!
//! # Example
//!
//! ```
//! use prdnn_nn::{Activation, Layer, Network};
//! use prdnn_linalg::Matrix;
//!
//! let net = Network::new(vec![
//!     Layer::dense(Matrix::from_rows(&[vec![1.0], vec![-1.0]]), vec![0.0, 0.0], Activation::Relu),
//!     Layer::dense(Matrix::from_rows(&[vec![1.0, 1.0]]), vec![0.0], Activation::Identity),
//! ]);
//! assert_eq!(net.forward(&[2.0]), vec![2.0]);   // |x|
//! assert_eq!(net.forward(&[-3.0]), vec![3.0]);
//! ```

mod activation;
mod batch;
pub mod io;
mod layer;
mod network;
pub mod train;

pub use activation::Activation;
pub use batch::FlatBatch;
pub use io::{network_content_hash, network_from_json, network_to_json};
pub use layer::{
    ActivationLinearization, Conv2dLayer, CrossingSpec, DenseLayer, Layer, Pool2dLayer, PoolWindows,
};
pub use network::{ActivationPattern, ForwardTrace, Network};
pub use train::{backprop, cross_entropy, sgd_train, softmax, Dataset, Loss, TrainConfig};
