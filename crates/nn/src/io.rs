//! JSON (de)serialisation of networks.
//!
//! The serving layer's versioned model store and its wire protocol need a
//! durable representation of a [`Network`]; this module maps the layer
//! types onto the [`serde::json`] document model.  Weights are written with
//! the shortest-round-trip `f64` formatting, so a serialise→parse cycle
//! reproduces the network **bit for bit** (asserted by the round-trip
//! tests) — a repaired model shipped through the store evaluates exactly
//! like the in-process original.
//!
//! Schema (one object per layer, in layer order):
//!
//! ```json
//! {"layers": [
//!   {"kind": "dense", "weights": {"rows": 2, "cols": 3, "data": [...]},
//!    "bias": [...], "activation": "relu"},
//!   {"kind": "conv2d", "in_channels": 1, ..., "weights": [...], "bias": [...],
//!    "activation": {"leaky_relu": 0.01}},
//!   {"kind": "max_pool2d", "channels": 4, "in_height": 8, "in_width": 8,
//!    "pool_h": 2, "pool_w": 2, "stride": 2}
//! ]}
//! ```

use crate::activation::Activation;
use crate::layer::{Conv2dLayer, DenseLayer, Layer, Pool2dLayer};
use crate::network::Network;
use prdnn_linalg::Matrix;
use serde::json::Value;

/// Serialises a network to the JSON document model.
pub fn network_to_json(net: &Network) -> Value {
    Value::obj([(
        "layers",
        Value::Arr(net.layers().iter().map(layer_to_json).collect()),
    )])
}

/// Parses a network from the JSON document model.
///
/// # Errors
///
/// Returns a description of the first malformed field.  Layer dimension
/// chaining is validated by [`Network::new`]'s own checks, reported as an
/// error rather than a panic.
pub fn network_from_json(value: &Value) -> Result<Network, String> {
    let layers = value
        .get("layers")
        .and_then(Value::as_arr)
        .ok_or("network: missing \"layers\" array")?;
    if layers.is_empty() {
        return Err("network: needs at least one layer".to_owned());
    }
    let layers: Vec<Layer> = layers
        .iter()
        .enumerate()
        .map(|(i, l)| layer_from_json(l).map_err(|e| format!("layer {i}: {e}")))
        .collect::<Result<_, _>>()?;
    // Re-validate the dimension chaining that `Network::new` asserts, so a
    // malformed document is an `Err`, not a panic.
    for i in 0..layers.len() - 1 {
        if layers[i].output_dim() != layers[i + 1].input_dim() {
            return Err(format!(
                "network: layer {} output dim {} does not match layer {} input dim {}",
                i,
                layers[i].output_dim(),
                i + 1,
                layers[i + 1].input_dim()
            ));
        }
    }
    Ok(Network::new(layers))
}

/// FNV-1a content hash of a network: layer kinds, dimensions, activation
/// parameters, and the exact bit patterns of every weight and bias.
///
/// Two networks hash equal iff they are bit-for-bit the same model, so the
/// durable version log can verify that a record read back from disk still
/// describes the network that was published (the hash is stored alongside
/// each record and re-checked during recovery).
pub fn network_content_hash(net: &Network) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut mix = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let mix_usizes = |mix: &mut dyn FnMut(u64), dims: &[usize]| {
        for &d in dims {
            mix(d as u64);
        }
    };
    let mix_f64s = |mix: &mut dyn FnMut(u64), xs: &[f64]| {
        for &x in xs {
            mix(x.to_bits());
        }
    };
    let mix_activation = |mix: &mut dyn FnMut(u64), a: Activation| match a {
        Activation::Relu => mix(1),
        Activation::HardTanh => mix(2),
        Activation::Tanh => mix(3),
        Activation::Sigmoid => mix(4),
        Activation::Identity => mix(5),
        Activation::LeakyRelu { alpha } => {
            mix(6);
            mix(alpha.to_bits());
        }
    };
    for layer in net.layers() {
        match layer {
            Layer::Dense(d) => {
                mix(0x10);
                mix_usizes(&mut mix, &[d.weights.rows(), d.weights.cols()]);
                mix_f64s(&mut mix, d.weights.as_slice());
                mix_f64s(&mut mix, &d.bias);
                mix_activation(&mut mix, d.activation);
            }
            Layer::Conv2d(c) => {
                mix(0x20);
                mix_usizes(
                    &mut mix,
                    &[
                        c.in_channels,
                        c.in_height,
                        c.in_width,
                        c.out_channels,
                        c.kernel_h,
                        c.kernel_w,
                        c.stride,
                        c.padding,
                    ],
                );
                mix_f64s(&mut mix, &c.weights);
                mix_f64s(&mut mix, &c.bias);
                mix_activation(&mut mix, c.activation);
            }
            Layer::MaxPool2d(p) | Layer::AvgPool2d(p) => {
                mix(if matches!(layer, Layer::MaxPool2d(_)) {
                    0x30
                } else {
                    0x40
                });
                mix_usizes(
                    &mut mix,
                    &[
                        p.channels,
                        p.in_height,
                        p.in_width,
                        p.pool_h,
                        p.pool_w,
                        p.stride,
                    ],
                );
            }
        }
    }
    h
}

fn layer_to_json(layer: &Layer) -> Value {
    match layer {
        Layer::Dense(d) => Value::obj([
            ("kind", Value::Str("dense".to_owned())),
            ("weights", matrix_to_json(&d.weights)),
            ("bias", Value::num_array(&d.bias)),
            ("activation", activation_to_json(d.activation)),
        ]),
        Layer::Conv2d(c) => Value::obj([
            ("kind", Value::Str("conv2d".to_owned())),
            ("in_channels", Value::Num(c.in_channels as f64)),
            ("in_height", Value::Num(c.in_height as f64)),
            ("in_width", Value::Num(c.in_width as f64)),
            ("out_channels", Value::Num(c.out_channels as f64)),
            ("kernel_h", Value::Num(c.kernel_h as f64)),
            ("kernel_w", Value::Num(c.kernel_w as f64)),
            ("stride", Value::Num(c.stride as f64)),
            ("padding", Value::Num(c.padding as f64)),
            ("weights", Value::num_array(&c.weights)),
            ("bias", Value::num_array(&c.bias)),
            ("activation", activation_to_json(c.activation)),
        ]),
        Layer::MaxPool2d(p) => pool_to_json("max_pool2d", p),
        Layer::AvgPool2d(p) => pool_to_json("avg_pool2d", p),
    }
}

fn pool_to_json(kind: &'static str, p: &Pool2dLayer) -> Value {
    Value::obj([
        ("kind", Value::Str(kind.to_owned())),
        ("channels", Value::Num(p.channels as f64)),
        ("in_height", Value::Num(p.in_height as f64)),
        ("in_width", Value::Num(p.in_width as f64)),
        ("pool_h", Value::Num(p.pool_h as f64)),
        ("pool_w", Value::Num(p.pool_w as f64)),
        ("stride", Value::Num(p.stride as f64)),
    ])
}

fn layer_from_json(value: &Value) -> Result<Layer, String> {
    let kind = value
        .get("kind")
        .and_then(Value::as_str)
        .ok_or("missing \"kind\"")?;
    match kind {
        "dense" => {
            let weights = matrix_from_json(value.get("weights").ok_or("missing \"weights\"")?)?;
            let bias = f64_vec(value, "bias")?;
            if bias.len() != weights.rows() {
                return Err(format!(
                    "bias length {} does not match weight rows {}",
                    bias.len(),
                    weights.rows()
                ));
            }
            let activation =
                activation_from_json(value.get("activation").ok_or("missing \"activation\"")?)?;
            Ok(Layer::Dense(DenseLayer::new(weights, bias, activation)))
        }
        "conv2d" => {
            let c = Conv2dLayer {
                in_channels: usize_field(value, "in_channels")?,
                in_height: usize_field(value, "in_height")?,
                in_width: usize_field(value, "in_width")?,
                out_channels: usize_field(value, "out_channels")?,
                kernel_h: usize_field(value, "kernel_h")?,
                kernel_w: usize_field(value, "kernel_w")?,
                stride: usize_field(value, "stride")?,
                padding: usize_field(value, "padding")?,
                weights: f64_vec(value, "weights")?,
                bias: f64_vec(value, "bias")?,
                activation: activation_from_json(
                    value.get("activation").ok_or("missing \"activation\"")?,
                )?,
            };
            if c.stride == 0 {
                return Err("conv2d: stride must be positive".to_owned());
            }
            if c.kernel_h == 0 || c.kernel_w == 0 || c.in_channels == 0 || c.out_channels == 0 {
                return Err("conv2d: channels and kernel dims must be positive".to_owned());
            }
            let expected = checked_product(
                "conv2d: out_channels×in_channels×kernel",
                &[c.out_channels, c.in_channels, c.kernel_h, c.kernel_w],
            )?;
            if c.weights.len() != expected {
                return Err(format!(
                    "conv2d: {} weights but out_channels×in_channels×kernel = {expected}",
                    c.weights.len()
                ));
            }
            if c.bias.len() != c.out_channels {
                return Err(format!(
                    "conv2d: {} biases but out_channels = {}",
                    c.bias.len(),
                    c.out_channels
                ));
            }
            let padded_h = c
                .in_height
                .checked_add(2 * c.padding)
                .ok_or("conv2d: padded height overflows")?;
            let padded_w = c
                .in_width
                .checked_add(2 * c.padding)
                .ok_or("conv2d: padded width overflows")?;
            if padded_h < c.kernel_h || padded_w < c.kernel_w {
                return Err("conv2d: kernel larger than padded input".to_owned());
            }
            checked_product(
                "conv2d: input volume",
                &[c.in_channels, c.in_height, c.in_width],
            )?;
            Ok(Layer::Conv2d(c))
        }
        "max_pool2d" | "avg_pool2d" => {
            let p = Pool2dLayer {
                channels: usize_field(value, "channels")?,
                in_height: usize_field(value, "in_height")?,
                in_width: usize_field(value, "in_width")?,
                pool_h: usize_field(value, "pool_h")?,
                pool_w: usize_field(value, "pool_w")?,
                stride: usize_field(value, "stride")?,
            };
            if p.stride == 0 {
                return Err("pool2d: stride must be positive".to_owned());
            }
            if p.pool_h == 0 || p.pool_w == 0 || p.channels == 0 {
                return Err("pool2d: channels and window dims must be positive".to_owned());
            }
            if p.in_height < p.pool_h || p.in_width < p.pool_w {
                return Err("pool2d: window larger than input".to_owned());
            }
            // Pooling layers have no weight arrays anchoring their size, so
            // the input volume must be bounded explicitly: window
            // enumeration allocates proportionally to it.
            let volume = checked_product(
                "pool2d: input volume",
                &[p.channels, p.in_height, p.in_width],
            )?;
            if volume > MAX_POOL_VOLUME {
                return Err(format!(
                    "pool2d: input volume {volume} exceeds the {MAX_POOL_VOLUME} cap"
                ));
            }
            Ok(if kind == "max_pool2d" {
                Layer::MaxPool2d(p)
            } else {
                Layer::AvgPool2d(p)
            })
        }
        other => Err(format!("unknown layer kind {other:?}")),
    }
}

fn matrix_to_json(m: &Matrix) -> Value {
    Value::obj([
        ("rows", Value::Num(m.rows() as f64)),
        ("cols", Value::Num(m.cols() as f64)),
        ("data", Value::num_array(m.as_slice())),
    ])
}

/// Maximum pooling-layer input volume accepted from untrusted documents
/// (dense/conv sizes are anchored by their weight arrays; pooling has no
/// such anchor).  Far above any model in this workspace.
const MAX_POOL_VOLUME: usize = 1 << 24;

/// Multiplies dimensions with overflow checking: crafted documents with
/// huge dims must be rejected, not wrapped past the size checks in
/// release builds.
fn checked_product(what: &str, dims: &[usize]) -> Result<usize, String> {
    dims.iter().try_fold(1usize, |acc, &d| {
        acc.checked_mul(d)
            .ok_or_else(|| format!("{what} overflows"))
    })
}

fn matrix_from_json(value: &Value) -> Result<Matrix, String> {
    let rows = usize_field(value, "rows")?;
    let cols = usize_field(value, "cols")?;
    let data = f64_vec(value, "data")?;
    if Some(data.len()) != rows.checked_mul(cols) {
        return Err(format!(
            "matrix: {} entries do not match rows {rows} × cols {cols}",
            data.len()
        ));
    }
    Ok(Matrix::from_flat(rows, cols, data))
}

fn activation_to_json(a: Activation) -> Value {
    match a {
        Activation::Relu => Value::Str("relu".to_owned()),
        Activation::HardTanh => Value::Str("hard_tanh".to_owned()),
        Activation::Tanh => Value::Str("tanh".to_owned()),
        Activation::Sigmoid => Value::Str("sigmoid".to_owned()),
        Activation::Identity => Value::Str("identity".to_owned()),
        Activation::LeakyRelu { alpha } => Value::obj([("leaky_relu", Value::Num(alpha))]),
    }
}

fn activation_from_json(value: &Value) -> Result<Activation, String> {
    if let Some(name) = value.as_str() {
        return match name {
            "relu" => Ok(Activation::Relu),
            "hard_tanh" => Ok(Activation::HardTanh),
            "tanh" => Ok(Activation::Tanh),
            "sigmoid" => Ok(Activation::Sigmoid),
            "identity" => Ok(Activation::Identity),
            other => Err(format!("unknown activation {other:?}")),
        };
    }
    if let Some(alpha) = value.get("leaky_relu").and_then(Value::as_f64) {
        return Ok(Activation::LeakyRelu { alpha });
    }
    Err("activation: expected a name or {\"leaky_relu\": alpha}".to_owned())
}

fn usize_field(value: &Value, key: &str) -> Result<usize, String> {
    value
        .get(key)
        .and_then(Value::as_usize)
        .ok_or_else(|| format!("missing or non-integer \"{key}\""))
}

fn f64_vec(value: &Value, key: &str) -> Result<Vec<f64>, String> {
    value
        .get(key)
        .and_then(Value::as_f64_vec)
        .ok_or_else(|| format!("missing or non-numeric \"{key}\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_round_trips_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = Network::mlp(&[5, 9, 4], Activation::Relu, &mut rng);
        let doc = network_to_json(&net).to_json();
        let back = network_from_json(&Value::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, net);
        // Bit-for-bit parameters, not just approximate equality.
        for (a, b) in net.params().iter().zip(back.params()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn every_layer_kind_round_trips() {
        let net = Network::new(vec![
            Layer::Conv2d(Conv2dLayer {
                in_channels: 1,
                in_height: 6,
                in_width: 6,
                out_channels: 2,
                kernel_h: 3,
                kernel_w: 3,
                stride: 1,
                padding: 1,
                weights: (0..18).map(|k| k as f64 * 0.1 - 0.9).collect(),
                bias: vec![0.1, -0.2],
                activation: Activation::LeakyRelu { alpha: 0.02 },
            }),
            Layer::MaxPool2d(Pool2dLayer {
                channels: 2,
                in_height: 6,
                in_width: 6,
                pool_h: 2,
                pool_w: 2,
                stride: 2,
            }),
            Layer::AvgPool2d(Pool2dLayer {
                channels: 2,
                in_height: 3,
                in_width: 3,
                pool_h: 3,
                pool_w: 3,
                stride: 3,
            }),
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, -1.0]]),
                vec![0.5],
                Activation::HardTanh,
            ),
        ]);
        let doc = network_to_json(&net).to_json();
        let back = network_from_json(&Value::parse(&doc).unwrap()).unwrap();
        assert_eq!(back, net);
        let x: Vec<f64> = (0..36).map(|k| (k as f64 * 0.37).sin()).collect();
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn content_hash_tracks_every_bit() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::mlp(&[4, 6, 2], Activation::Relu, &mut rng);
        let h = network_content_hash(&net);
        // Stable under serialise → parse (the recovery path recomputes it).
        let doc = network_to_json(&net).to_json();
        let back = network_from_json(&Value::parse(&doc).unwrap()).unwrap();
        assert_eq!(network_content_hash(&back), h);
        // A single flipped mantissa bit changes the hash.
        let mut params = net.params();
        params[5] = f64::from_bits(params[5].to_bits() ^ 1);
        let mut tweaked = net.clone();
        tweaked.set_params(&params);
        assert_ne!(network_content_hash(&tweaked), h);
    }

    #[test]
    fn malformed_documents_are_rejected_with_context() {
        let cases = [
            (r#"{}"#, "layers"),
            (r#"{"layers": []}"#, "at least one"),
            (r#"{"layers": [{"kind": "warp"}]}"#, "unknown layer kind"),
            (
                r#"{"layers": [{"kind": "dense", "weights": {"rows": 1, "cols": 2, "data": [1.0]}, "bias": [0.0], "activation": "relu"}]}"#,
                "do not match rows",
            ),
            // Huge dims must be rejected by checked arithmetic, not
            // wrapped past the size checks.
            (
                r#"{"layers": [{"kind": "dense", "weights": {"rows": 4611686018427387904, "cols": 4, "data": [1.0]}, "bias": [0.0], "activation": "relu"}]}"#,
                "do not match rows",
            ),
            (
                r#"{"layers": [{"kind": "conv2d", "in_channels": 4611686018427387904, "in_height": 2, "in_width": 2, "out_channels": 1, "kernel_h": 2, "kernel_w": 2, "stride": 1, "padding": 0, "weights": [], "bias": [0.0], "activation": "relu"}]}"#,
                "overflows",
            ),
            (
                r#"{"layers": [{"kind": "max_pool2d", "channels": 100000000, "in_height": 1000, "in_width": 1000, "pool_h": 1, "pool_w": 1, "stride": 1}]}"#,
                "cap",
            ),
            (
                r#"{"layers": [{"kind": "dense", "weights": {"rows": 1, "cols": 1, "data": [1.0]}, "bias": [0.0, 0.0], "activation": "relu"}]}"#,
                "bias length",
            ),
            (
                r#"{"layers": [{"kind": "dense", "weights": {"rows": 1, "cols": 1, "data": [1.0]}, "bias": [0.0], "activation": "softplus"}]}"#,
                "unknown activation",
            ),
            (
                r#"{"layers": [
                    {"kind": "dense", "weights": {"rows": 2, "cols": 1, "data": [1.0, 2.0]}, "bias": [0.0, 0.0], "activation": "relu"},
                    {"kind": "dense", "weights": {"rows": 1, "cols": 3, "data": [1.0, 2.0, 3.0]}, "bias": [0.0], "activation": "identity"}
                ]}"#,
                "does not match",
            ),
        ];
        for (doc, needle) in cases {
            let err = network_from_json(&Value::parse(doc).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }
}
