//! Batch-major flat buffers for pushing many vectors through the network.
//!
//! The repair pipeline is dominated by *batched* layer evaluation: key-point
//! batches in Algorithm 1, carried vertex values in the SyReNN transformers,
//! and the DDNN's paired activation/value channels.  Storing a batch as
//! `Vec<Vec<f64>>` costs one heap allocation per vector per layer and
//! scatters rows across the heap; a [`FlatBatch`] instead holds the whole
//! batch contiguously in one row-major `Vec<f64>` (`count × dim`), which is
//! exactly the `A` operand shape the blocked GEMM in `prdnn-linalg` packs
//! from.  A dense layer applied to a `FlatBatch` is then a single
//! `gemm_nt(batch, weights)` call — one packed weight tile serves every
//! vector in the batch.
//!
//! Bit-compatibility: the GEMM kernels accumulate every output element in
//! one ascending-`k` chain, the same order as the per-point `matvec`, so
//! routing a batch through the flat path produces bit-identical results to
//! mapping the per-point entry points — callers may switch freely.

/// A batch of `count` vectors of dimension `dim`, stored row-major in one
/// contiguous buffer.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlatBatch {
    dim: usize,
    count: usize,
    data: Vec<f64>,
}

impl FlatBatch {
    /// An empty batch of `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        FlatBatch {
            dim,
            count: 0,
            data: Vec::new(),
        }
    }

    /// An empty batch with room for `count` vectors before reallocating.
    pub fn with_capacity(dim: usize, count: usize) -> Self {
        FlatBatch {
            dim,
            count: 0,
            data: Vec::with_capacity(dim * count),
        }
    }

    /// A batch of `count` zero vectors (the GEMM output shape).
    pub fn zeros(dim: usize, count: usize) -> Self {
        FlatBatch {
            dim,
            count,
            data: vec![0.0; dim * count],
        }
    }

    /// Builds a batch by copying `rows`.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows(dim: usize, rows: &[Vec<f64>]) -> Self {
        let mut batch = FlatBatch::with_capacity(dim, rows.len());
        for row in rows {
            batch.push_row(row);
        }
        batch
    }

    /// Builds a batch by copying an already-flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: &[f64]) -> Self {
        assert!(
            dim > 0 && data.len().is_multiple_of(dim),
            "flat batch buffer length must be a multiple of the dimension"
        );
        FlatBatch {
            dim,
            count: data.len() / dim,
            data: data.to_vec(),
        }
    }

    /// Vector dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors in the batch.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the batch holds no vectors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Appends one vector.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.dim, "flat batch row dimension mismatch");
        self.data.extend_from_slice(row);
        self.count += 1;
    }

    /// The `i`-th vector.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable view of the `i`-th vector.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over the vectors in order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.count).map(move |i| self.row(i))
    }

    /// Iterates over mutable views of the vectors in order.
    pub fn rows_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        let dim = self.dim.max(1);
        self.data.chunks_mut(dim)
    }

    /// The whole batch as one row-major slice (the GEMM `A` operand).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the whole buffer (the GEMM `C` operand).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copies the batch out into one `Vec` per vector.
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let batch = FlatBatch::from_rows(2, &rows);
        assert_eq!(batch.dim(), 2);
        assert_eq!(batch.count(), 3);
        assert_eq!(batch.row(1), &[3.0, 4.0]);
        assert_eq!(batch.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(batch.to_rows(), rows);
        assert_eq!(batch.rows().count(), 3);
    }

    #[test]
    fn push_and_mutate() {
        let mut batch = FlatBatch::new(3);
        assert!(batch.is_empty());
        batch.push_row(&[1.0, 2.0, 3.0]);
        batch.row_mut(0)[1] = 9.0;
        assert_eq!(batch.row(0), &[1.0, 9.0, 3.0]);
        for row in batch.rows_mut() {
            row[0] += 1.0;
        }
        assert_eq!(batch.row(0), &[2.0, 9.0, 3.0]);
    }

    #[test]
    fn zeros_shape() {
        let batch = FlatBatch::zeros(4, 2);
        assert_eq!(batch.count(), 2);
        assert_eq!(batch.row(1), &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "row dimension mismatch")]
    fn wrong_row_length_panics() {
        let mut batch = FlatBatch::new(2);
        batch.push_row(&[1.0]);
    }
}
