//! Network layers: fully-connected, convolutional, and pooling.
//!
//! Every layer is modelled as the paper's `(W, σ)` pair (Definition 2.1):
//! an affine "pre-activation" map followed by a (possibly non-linear)
//! activation.  Pooling layers have an identity affine part and use the pool
//! as their activation, which is exactly how the paper treats MaxPool/AvgPool
//! (they are activation functions, Definition 2.3 discussion).
//!
//! Besides forward evaluation, each layer exposes the three ingredients the
//! repair algorithms need:
//!
//! * parameter access (`params` / `add_to_params`) so a repair `Δ` can be
//!   applied to a single layer,
//! * vector–Jacobian products against the pre-activation with respect to the
//!   *input* and with respect to the *parameters*, which are used both to
//!   build the repair LP (Algorithm 1, line 5) and for gradient-descent
//!   training of the fine-tuning baselines, and
//! * the layer's activation-linearisation around an activation-channel
//!   pre-activation (Definition 4.2/4.3), which defines the value channel of
//!   a Decoupled DNN.

use crate::activation::Activation;
use crate::batch::FlatBatch;
use prdnn_linalg::{gemm, Matrix};
use serde::{Deserialize, Serialize};

/// How a layer's activation can cross between linear pieces.
///
/// This is the information the linear-region computation
/// (`prdnn-syrenn`) needs from each layer: where, as a function of the
/// pre-activation vector, the layer switches from one affine piece to
/// another.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossingSpec {
    /// The layer is affine: it never introduces new linear regions.
    None,
    /// Element-wise PWL activation: unit `i` crosses whenever its
    /// pre-activation equals one of the listed thresholds.
    ElementwiseThresholds(Vec<f64>),
    /// Max-pooling: a crossing happens whenever two pre-activation entries
    /// inside the same window become equal.  Each inner vector lists the
    /// pre-activation indices belonging to one window.
    WindowPairs(Vec<Vec<usize>>),
    /// The layer's activation is not piecewise linear (Tanh/Sigmoid); linear
    /// regions are not defined for it.
    NotPiecewiseLinear,
}

/// The (affine) linearisation of a layer's activation around a fixed
/// pre-activation, as used by the value channel of a DDNN.
#[derive(Debug, Clone, PartialEq)]
pub enum ActivationLinearization {
    /// Element-wise: `out_i = slope_i · z_i + intercept_i`.
    Elementwise {
        /// Per-component slope of the linearisation.
        slopes: Vec<f64>,
        /// Per-component intercept of the linearisation.
        intercepts: Vec<f64>,
    },
    /// Selection (max-pooling): `out_w = z[selected[w]]`.
    Selection {
        /// For each output, the input index it copies.
        selected: Vec<usize>,
        /// Dimension of the pre-activation the selection reads from.
        in_dim: usize,
    },
    /// Fixed averaging (average pooling): `out_w = mean(z[window_w])`.
    Averaging {
        /// For each output, the input indices it averages.
        windows: Vec<Vec<usize>>,
        /// Dimension of the pre-activation the averaging reads from.
        in_dim: usize,
    },
}

impl ActivationLinearization {
    /// Applies the linearisation to a pre-activation vector.
    pub fn apply(&self, z: &[f64]) -> Vec<f64> {
        match self {
            ActivationLinearization::Elementwise { slopes, intercepts } => z
                .iter()
                .zip(slopes.iter().zip(intercepts))
                .map(|(zi, (s, b))| s * zi + b)
                .collect(),
            ActivationLinearization::Selection { selected, .. } => {
                selected.iter().map(|&i| z[i]).collect()
            }
            ActivationLinearization::Averaging { windows, .. } => windows
                .iter()
                .map(|w| w.iter().map(|&i| z[i]).sum::<f64>() / w.len() as f64)
                .collect(),
        }
    }

    /// Computes `rows · D`, where `D` is the Jacobian of the linearisation
    /// (i.e. the slopes/selection/averaging matrix) and `rows` has one column
    /// per linearisation *output*.
    pub fn vjp(&self, rows: &Matrix) -> Matrix {
        match self {
            ActivationLinearization::Elementwise { slopes, .. } => {
                Matrix::from_fn(rows.rows(), slopes.len(), |r, c| rows[(r, c)] * slopes[c])
            }
            ActivationLinearization::Selection { selected, in_dim } => {
                let mut out = Matrix::zeros(rows.rows(), *in_dim);
                for r in 0..rows.rows() {
                    for (w, &i) in selected.iter().enumerate() {
                        out[(r, i)] += rows[(r, w)];
                    }
                }
                out
            }
            ActivationLinearization::Averaging { windows, in_dim } => {
                let mut out = Matrix::zeros(rows.rows(), *in_dim);
                for r in 0..rows.rows() {
                    for (w, idxs) in windows.iter().enumerate() {
                        let coeff = rows[(r, w)] / idxs.len() as f64;
                        for &i in idxs {
                            out[(r, i)] += coeff;
                        }
                    }
                }
                out
            }
        }
    }

    /// Output dimension of the linearised activation.
    pub fn output_dim(&self) -> usize {
        match self {
            ActivationLinearization::Elementwise { slopes, .. } => slopes.len(),
            ActivationLinearization::Selection { selected, .. } => selected.len(),
            ActivationLinearization::Averaging { windows, .. } => windows.len(),
        }
    }
}

/// A fully-connected layer `σ(W x + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight matrix of shape `output_dim × input_dim`.
    pub weights: Matrix,
    /// Bias vector of length `output_dim`.
    pub bias: Vec<f64>,
    /// Activation applied element-wise to the pre-activation.
    pub activation: Activation,
}

impl DenseLayer {
    /// Creates a dense layer from its weights, bias, and activation.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != weights.rows()`.
    pub fn new(weights: Matrix, bias: Vec<f64>, activation: Activation) -> Self {
        assert_eq!(
            weights.rows(),
            bias.len(),
            "dense layer: bias/weight row mismatch"
        );
        DenseLayer {
            weights,
            bias,
            activation,
        }
    }
}

/// A 2-D convolutional layer `σ(conv(x, K) + b)` over `C×H×W` inputs
/// flattened in row-major `[channel][row][col]` order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2dLayer {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_height: usize,
    /// Input width.
    pub in_width: usize,
    /// Output channel count (number of filters).
    pub out_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding (same on every side).
    pub padding: usize,
    /// Filter weights in `[out_c][in_c][kh][kw]` order.
    pub weights: Vec<f64>,
    /// Per-output-channel bias.
    pub bias: Vec<f64>,
    /// Activation applied element-wise to the pre-activation.
    pub activation: Activation,
}

impl Conv2dLayer {
    /// Output height after the convolution.
    pub fn out_height(&self) -> usize {
        (self.in_height + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width after the convolution.
    pub fn out_width(&self) -> usize {
        (self.in_width + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    fn in_index(&self, c: usize, y: isize, x: isize) -> Option<usize> {
        if y < 0 || x < 0 || y as usize >= self.in_height || x as usize >= self.in_width {
            None
        } else {
            Some((c * self.in_height + y as usize) * self.in_width + x as usize)
        }
    }

    fn weight_index(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((oc * self.in_channels + ic) * self.kernel_h + ky) * self.kernel_w + kx
    }

    /// Iterates over `(out_index, weight_index, in_index)` triples describing
    /// the sparse linear structure of the convolution, calling `f` for each.
    fn for_each_connection(&self, mut f: impl FnMut(usize, usize, usize)) {
        let (oh, ow) = (self.out_height(), self.out_width());
        for oc in 0..self.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let out_idx = (oc * oh + oy) * ow + ox;
                    for ic in 0..self.in_channels {
                        for ky in 0..self.kernel_h {
                            for kx in 0..self.kernel_w {
                                let iy = (oy * self.stride + ky) as isize - self.padding as isize;
                                let ix = (ox * self.stride + kx) as isize - self.padding as isize;
                                if let Some(in_idx) = self.in_index(ic, iy, ix) {
                                    f(out_idx, self.weight_index(oc, ic, ky, kx), in_idx);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Writes the convolution pre-activation for one input into `z`
    /// (which must have length `output_dim`).
    fn preactivation_into(&self, input: &[f64], z: &mut [f64]) {
        let (oh, ow) = (self.out_height(), self.out_width());
        for oc in 0..self.out_channels {
            let b = self.bias[oc];
            for oy in 0..oh {
                for ox in 0..ow {
                    z[(oc * oh + oy) * ow + ox] = b;
                }
            }
        }
        self.for_each_connection(|out_idx, w_idx, in_idx| {
            z[out_idx] += self.weights[w_idx] * input[in_idx];
        });
    }
}

/// A 2-D pooling layer over `C×H×W` inputs (max or average).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pool2dLayer {
    /// Channel count (unchanged by pooling).
    pub channels: usize,
    /// Input height.
    pub in_height: usize,
    /// Input width.
    pub in_width: usize,
    /// Pooling window height.
    pub pool_h: usize,
    /// Pooling window width.
    pub pool_w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
}

impl Pool2dLayer {
    /// Output height after pooling.
    pub fn out_height(&self) -> usize {
        (self.in_height - self.pool_h) / self.stride + 1
    }

    /// Output width after pooling.
    pub fn out_width(&self) -> usize {
        (self.in_width - self.pool_w) / self.stride + 1
    }

    /// The input indices covered by each pooling window, in output order.
    pub fn windows(&self) -> Vec<Vec<usize>> {
        let flat = self.flat_windows();
        flat.iter().map(|w| w.to_vec()).collect()
    }

    /// The window index map as one flat buffer ([`PoolWindows`]).
    ///
    /// Every window of a pooling layer has the same size
    /// (`pool_h × pool_w`), so the nested `Vec<Vec<usize>>` of
    /// [`Self::windows`] — one heap allocation per window — carries no
    /// information a flat `windows × window_len` index table doesn't.  The
    /// batch entry points compute this table once per call and share it
    /// across the whole batch.
    pub fn flat_windows(&self) -> PoolWindows {
        let (oh, ow) = (self.out_height(), self.out_width());
        let window_len = self.pool_h * self.pool_w;
        let mut indices = Vec::with_capacity(self.channels * oh * ow * window_len);
        for c in 0..self.channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    for py in 0..self.pool_h {
                        for px in 0..self.pool_w {
                            let iy = oy * self.stride + py;
                            let ix = ox * self.stride + px;
                            indices.push((c * self.in_height + iy) * self.in_width + ix);
                        }
                    }
                }
            }
        }
        PoolWindows {
            indices,
            window_len,
        }
    }
}

/// The input-index map of a pooling layer, flattened: window `w` reads the
/// input positions `self.window(w)`.  One allocation for the whole map,
/// where the nested [`Pool2dLayer::windows`] form allocates per window.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolWindows {
    indices: Vec<usize>,
    window_len: usize,
}

impl PoolWindows {
    /// Number of pooling windows (the layer's output dimension).
    pub fn count(&self) -> usize {
        self.indices.len().checked_div(self.window_len).unwrap_or(0)
    }

    /// Input indices read by window `w`.
    #[inline]
    pub fn window(&self, w: usize) -> &[usize] {
        &self.indices[w * self.window_len..(w + 1) * self.window_len]
    }

    /// Iterates over the windows in output order.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        (0..self.count()).map(move |w| self.window(w))
    }
}

/// A single network layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(DenseLayer),
    /// 2-D convolution.
    Conv2d(Conv2dLayer),
    /// 2-D max pooling (a PWL activation with no parameters).
    MaxPool2d(Pool2dLayer),
    /// 2-D average pooling (an affine map with no parameters).
    AvgPool2d(Pool2dLayer),
}

impl Layer {
    /// Convenience constructor for a dense layer.
    pub fn dense(weights: Matrix, bias: Vec<f64>, activation: Activation) -> Self {
        Layer::Dense(DenseLayer::new(weights, bias, activation))
    }

    /// Input dimension expected by the layer.
    pub fn input_dim(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weights.cols(),
            Layer::Conv2d(c) => c.in_channels * c.in_height * c.in_width,
            Layer::MaxPool2d(p) | Layer::AvgPool2d(p) => p.channels * p.in_height * p.in_width,
        }
    }

    /// Output dimension produced by the layer.
    pub fn output_dim(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weights.rows(),
            Layer::Conv2d(c) => c.out_channels * c.out_height() * c.out_width(),
            Layer::MaxPool2d(p) | Layer::AvgPool2d(p) => {
                p.channels * p.out_height() * p.out_width()
            }
        }
    }

    /// Dimension of the layer's pre-activation vector.
    ///
    /// For dense/conv layers this equals [`Self::output_dim`]; for pooling
    /// layers the pre-activation *is* the input (identity affine part).
    pub fn preactivation_dim(&self) -> usize {
        match self {
            Layer::Dense(_) | Layer::Conv2d(_) => self.output_dim(),
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => self.input_dim(),
        }
    }

    /// Number of trainable/repairable parameters in the layer.
    pub fn num_params(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weights.rows() * d.weights.cols() + d.bias.len(),
            Layer::Conv2d(c) => c.weights.len() + c.bias.len(),
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => 0,
        }
    }

    /// Flattened copy of the layer's parameters (weights then biases).
    pub fn params(&self) -> Vec<f64> {
        match self {
            Layer::Dense(d) => {
                let mut p = d.weights.as_slice().to_vec();
                p.extend_from_slice(&d.bias);
                p
            }
            Layer::Conv2d(c) => {
                let mut p = c.weights.clone();
                p.extend_from_slice(&c.bias);
                p
            }
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => Vec::new(),
        }
    }

    /// Adds `delta` to the layer's parameters (the repair application step,
    /// Algorithm 1 line 9).
    ///
    /// # Panics
    ///
    /// Panics if `delta.len() != self.num_params()`.
    pub fn add_to_params(&mut self, delta: &[f64]) {
        assert_eq!(
            delta.len(),
            self.num_params(),
            "add_to_params: wrong delta length"
        );
        match self {
            Layer::Dense(d) => {
                let nw = d.weights.rows() * d.weights.cols();
                for (w, dv) in d.weights.as_mut_slice().iter_mut().zip(&delta[..nw]) {
                    *w += dv;
                }
                for (b, dv) in d.bias.iter_mut().zip(&delta[nw..]) {
                    *b += dv;
                }
            }
            Layer::Conv2d(c) => {
                let nw = c.weights.len();
                for (w, dv) in c.weights.iter_mut().zip(&delta[..nw]) {
                    *w += dv;
                }
                for (b, dv) in c.bias.iter_mut().zip(&delta[nw..]) {
                    *b += dv;
                }
            }
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => {}
        }
    }

    /// Overwrites the layer's parameters with `params`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn set_params(&mut self, params: &[f64]) {
        let current = self.params();
        assert_eq!(params.len(), current.len(), "set_params: wrong length");
        let delta: Vec<f64> = params.iter().zip(&current).map(|(n, o)| n - o).collect();
        self.add_to_params(&delta);
    }

    /// Computes the layer's pre-activation `z = W x + b` (or `z = x` for
    /// pooling layers).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn preactivation(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(
            input.len(),
            self.input_dim(),
            "layer input dimension mismatch"
        );
        match self {
            Layer::Dense(d) => {
                let mut z = d.weights.matvec(input);
                for (zi, b) in z.iter_mut().zip(&d.bias) {
                    *zi += b;
                }
                z
            }
            Layer::Conv2d(c) => {
                let mut z = vec![0.0; self.output_dim()];
                c.preactivation_into(input, &mut z);
                z
            }
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => input.to_vec(),
        }
    }

    /// Applies the layer's activation to a pre-activation vector.
    pub fn activate(&self, z: &[f64]) -> Vec<f64> {
        match self {
            Layer::Dense(d) => d.activation.apply(z),
            Layer::Conv2d(c) => c.activation.apply(z),
            Layer::MaxPool2d(p) => p
                .flat_windows()
                .iter()
                .map(|w| w.iter().map(|&i| z[i]).fold(f64::NEG_INFINITY, f64::max))
                .collect(),
            Layer::AvgPool2d(p) => p
                .flat_windows()
                .iter()
                .map(|w| w.iter().map(|&i| z[i]).sum::<f64>() / w.len() as f64)
                .collect(),
        }
    }

    /// Full forward pass through the layer.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.activate(&self.preactivation(input))
    }

    /// Computes the pre-activation of every vector in `inputs` (the affine
    /// map applied per vector; pooling layers share one identity fast path).
    ///
    /// This is the entry point the incremental SyReNN transformer pipeline
    /// uses to push all carried vertex values through a layer together —
    /// once per layer, instead of re-running the network prefix per vertex.
    ///
    /// # Panics
    ///
    /// Panics if any input has the wrong dimension.
    pub fn preactivation_batch(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        match self {
            // Pooling pre-activations are the identity; avoid the flat
            // round-trip and just copy, with the same dimension check as
            // `preactivation`.
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => inputs
                .iter()
                .map(|v| {
                    assert_eq!(v.len(), self.input_dim(), "layer input dimension mismatch");
                    v.to_vec()
                })
                .collect(),
            _ => self
                .preactivation_batch_flat(&FlatBatch::from_rows(self.input_dim(), inputs))
                .to_rows(),
        }
    }

    /// [`Self::preactivation_batch`] on a batch-major flat buffer.
    ///
    /// For dense layers the whole batch goes through **one** blocked GEMM
    /// call (`Z = X · Wᵀ`, then the bias is added row-wise): one packed
    /// weight tile serves every vector in the batch.  The GEMM accumulates
    /// each output element in the same ascending-`k` order as the per-point
    /// `matvec`, and the bias is added after the full accumulation exactly
    /// as in [`Self::preactivation`], so the result is bit-identical to
    /// mapping the per-point entry point over the batch.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.dim() != self.input_dim()`.
    pub fn preactivation_batch_flat(&self, inputs: &FlatBatch) -> FlatBatch {
        assert_eq!(
            inputs.dim(),
            self.input_dim(),
            "layer input dimension mismatch"
        );
        match self {
            Layer::Dense(d) => {
                let (out_dim, in_dim) = (d.weights.rows(), d.weights.cols());
                let mut z = FlatBatch::zeros(out_dim, inputs.count());
                // `gemm_nt` takes its B operand transposed, which is exactly
                // the row-major `out_dim × in_dim` weight layout.
                gemm::gemm_nt(
                    inputs.count(),
                    in_dim,
                    out_dim,
                    inputs.as_slice(),
                    d.weights.as_slice(),
                    z.as_mut_slice(),
                );
                for row in z.rows_mut() {
                    for (zi, b) in row.iter_mut().zip(&d.bias) {
                        *zi += b;
                    }
                }
                z
            }
            Layer::Conv2d(c) => {
                let mut z = FlatBatch::zeros(self.output_dim(), inputs.count());
                for i in 0..inputs.count() {
                    c.preactivation_into(inputs.row(i), z.row_mut(i));
                }
                z
            }
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => inputs.clone(),
        }
    }

    /// Whether the layer's pre-activation is the identity map (pooling
    /// layers): carried values already equal the pre-activation, so batch
    /// pipelines can skip the copy entirely.
    pub fn preactivation_is_identity(&self) -> bool {
        matches!(self, Layer::MaxPool2d(_) | Layer::AvgPool2d(_))
    }

    /// Applies the layer's activation to every pre-activation in `zs`.
    ///
    /// For pooling layers the window index set is computed once and shared
    /// across the whole batch (computing it per vector is what makes
    /// [`Self::activate`] expensive in vertex-heavy loops).
    pub fn activate_batch(&self, zs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.activate_batch_flat(&FlatBatch::from_rows(self.preactivation_dim(), zs))
            .to_rows()
    }

    /// [`Self::activate_batch`] on a batch-major flat buffer.
    ///
    /// Element-wise activations map one scalar function over the whole
    /// contiguous buffer; pooling layers share one flat window index map
    /// ([`Pool2dLayer::flat_windows`]) across the batch — no per-window or
    /// per-vector index allocations.
    pub fn activate_batch_flat(&self, zs: &FlatBatch) -> FlatBatch {
        fn elementwise(activation: Activation, zs: &FlatBatch) -> FlatBatch {
            let mut out = zs.clone();
            for x in out.as_mut_slice().iter_mut() {
                *x = activation.apply_scalar(*x);
            }
            out
        }
        fn pooled(
            windows: &PoolWindows,
            zs: &FlatBatch,
            mut one: impl FnMut(&[usize], &[f64]) -> f64,
        ) -> FlatBatch {
            let mut out = FlatBatch::zeros(windows.count(), zs.count());
            for i in 0..zs.count() {
                let z = zs.row(i);
                for (o, w) in out.row_mut(i).iter_mut().zip(windows.iter()) {
                    *o = one(w, z);
                }
            }
            out
        }
        match self {
            Layer::Dense(d) => elementwise(d.activation, zs),
            Layer::Conv2d(c) => elementwise(c.activation, zs),
            Layer::MaxPool2d(p) => pooled(&p.flat_windows(), zs, |w, z| {
                w.iter().map(|&i| z[i]).fold(f64::NEG_INFINITY, f64::max)
            }),
            Layer::AvgPool2d(p) => pooled(&p.flat_windows(), zs, |w, z| {
                w.iter().map(|&i| z[i]).sum::<f64>() / w.len() as f64
            }),
        }
    }

    /// Full forward pass for a batch of inputs.
    pub fn forward_batch(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.forward_batch_flat(&FlatBatch::from_rows(self.input_dim(), inputs))
            .to_rows()
    }

    /// [`Self::forward_batch`] on a batch-major flat buffer.
    pub fn forward_batch_flat(&self, inputs: &FlatBatch) -> FlatBatch {
        if self.preactivation_is_identity() {
            // Pooling: the pre-activation is the identity, so activate
            // straight off the inputs instead of copying them first.
            assert_eq!(
                inputs.dim(),
                self.input_dim(),
                "layer input dimension mismatch"
            );
            return self.activate_batch_flat(inputs);
        }
        self.activate_batch_flat(&self.preactivation_batch_flat(inputs))
    }

    /// The linearisation of the layer's activation around pre-activation
    /// `z_center` (Definition 4.2), used by the DDNN value channel.
    pub fn linearize_activation(&self, z_center: &[f64]) -> ActivationLinearization {
        match self {
            Layer::Dense(d) => {
                let lin = d.activation.linearize(z_center);
                ActivationLinearization::Elementwise {
                    slopes: lin.iter().map(|(s, _)| *s).collect(),
                    intercepts: lin.iter().map(|(_, b)| *b).collect(),
                }
            }
            Layer::Conv2d(c) => {
                let lin = c.activation.linearize(z_center);
                ActivationLinearization::Elementwise {
                    slopes: lin.iter().map(|(s, _)| *s).collect(),
                    intercepts: lin.iter().map(|(_, b)| *b).collect(),
                }
            }
            Layer::MaxPool2d(p) => {
                let selected = p
                    .flat_windows()
                    .iter()
                    .map(|w| {
                        let mut best = w[0];
                        for &i in w {
                            if z_center[i] > z_center[best] {
                                best = i;
                            }
                        }
                        best
                    })
                    .collect();
                ActivationLinearization::Selection {
                    selected,
                    in_dim: self.input_dim(),
                }
            }
            Layer::AvgPool2d(p) => ActivationLinearization::Averaging {
                windows: p.windows(),
                in_dim: self.input_dim(),
            },
        }
    }

    /// Linearises the layer's activation around every centre in `z_centers`
    /// (the batch form of [`Self::linearize_activation`]).
    ///
    /// For pooling layers the window index set is computed once and shared
    /// across the whole batch — the per-centre selection/averaging is built
    /// from the shared windows, where the per-vector call re-enumerates
    /// them every time.  This is what makes the batched DDNN channels cheap
    /// in vertex-heavy repair loops.
    pub fn linearize_activation_batch(
        &self,
        z_centers: &[Vec<f64>],
    ) -> Vec<ActivationLinearization> {
        self.linearize_activation_batch_flat(&FlatBatch::from_rows(
            self.preactivation_dim(),
            z_centers,
        ))
    }

    /// [`Self::linearize_activation_batch`] on a batch-major flat buffer.
    pub fn linearize_activation_batch_flat(
        &self,
        z_centers: &FlatBatch,
    ) -> Vec<ActivationLinearization> {
        match self {
            Layer::Dense(_) | Layer::Conv2d(_) => z_centers
                .rows()
                .map(|z| self.linearize_activation(z))
                .collect(),
            Layer::MaxPool2d(p) => {
                let windows = p.flat_windows();
                let in_dim = self.input_dim();
                z_centers
                    .rows()
                    .map(|z| {
                        let selected = windows
                            .iter()
                            .map(|w| {
                                let mut best = w[0];
                                for &i in w {
                                    if z[i] > z[best] {
                                        best = i;
                                    }
                                }
                                best
                            })
                            .collect();
                        ActivationLinearization::Selection { selected, in_dim }
                    })
                    .collect()
            }
            Layer::AvgPool2d(p) => {
                let windows = p.windows();
                let in_dim = self.input_dim();
                (0..z_centers.count())
                    .map(|_| ActivationLinearization::Averaging {
                        windows: windows.clone(),
                        in_dim,
                    })
                    .collect()
            }
        }
    }

    /// The element-wise activation of a dense/conv layer, if any.
    pub fn activation(&self) -> Option<Activation> {
        match self {
            Layer::Dense(d) => Some(d.activation),
            Layer::Conv2d(c) => Some(c.activation),
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => None,
        }
    }

    /// Whether the layer computes a piecewise-linear function.
    pub fn is_piecewise_linear(&self) -> bool {
        match self {
            Layer::Dense(d) => d.activation.is_piecewise_linear(),
            Layer::Conv2d(c) => c.activation.is_piecewise_linear(),
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => true,
        }
    }

    /// How this layer's activation crosses between linear pieces, as a
    /// function of its pre-activation.
    pub fn crossing_spec(&self) -> CrossingSpec {
        match self {
            Layer::Dense(d) => elementwise_crossing(d.activation),
            Layer::Conv2d(c) => elementwise_crossing(c.activation),
            Layer::MaxPool2d(p) => CrossingSpec::WindowPairs(p.windows()),
            Layer::AvgPool2d(_) => CrossingSpec::None,
        }
    }

    /// The activation pattern of the layer at pre-activation `z`
    /// (Definition 2.5): one small integer per pre-activation unit (the
    /// linear piece it falls in) or per window (the argmax position).
    pub fn activation_pattern(&self, z: &[f64]) -> Vec<i8> {
        match self {
            Layer::Dense(d) => z.iter().map(|&x| d.activation.piece_index(x)).collect(),
            Layer::Conv2d(c) => z.iter().map(|&x| c.activation.piece_index(x)).collect(),
            Layer::MaxPool2d(p) => p
                .flat_windows()
                .iter()
                .map(|w| {
                    let mut best = 0usize;
                    for (k, &i) in w.iter().enumerate() {
                        if z[i] > z[w[best]] {
                            best = k;
                        }
                    }
                    best as i8
                })
                .collect(),
            Layer::AvgPool2d(_) => Vec::new(),
        }
    }

    /// Computes `rows · (∂z/∂input)`, the vector–Jacobian product of the
    /// pre-activation with respect to the layer *input*.
    ///
    /// `rows` must have one column per pre-activation component; the result
    /// has one column per input component.
    pub fn preact_input_vjp(&self, rows: &Matrix) -> Matrix {
        assert_eq!(
            rows.cols(),
            self.preactivation_dim(),
            "preact_input_vjp: column mismatch"
        );
        match self {
            Layer::Dense(d) => rows.matmul(&d.weights),
            Layer::Conv2d(c) => {
                let mut out = Matrix::zeros(rows.rows(), self.input_dim());
                c.for_each_connection(|out_idx, w_idx, in_idx| {
                    let w = c.weights[w_idx];
                    for r in 0..rows.rows() {
                        out[(r, in_idx)] += rows[(r, out_idx)] * w;
                    }
                });
                out
            }
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => rows.clone(),
        }
    }

    /// Computes `rows · (∂z/∂params)`, the vector–Jacobian product of the
    /// pre-activation with respect to the layer *parameters*, evaluated at
    /// `input`.
    ///
    /// `rows` must have one column per pre-activation component; the result
    /// has one column per parameter (in [`Self::params`] order).  This is the
    /// core quantity behind Algorithm 1's Jacobian (line 5).
    pub fn preact_param_vjp(&self, rows: &Matrix, input: &[f64]) -> Matrix {
        assert_eq!(
            rows.cols(),
            self.preactivation_dim(),
            "preact_param_vjp: column mismatch"
        );
        assert_eq!(
            input.len(),
            self.input_dim(),
            "preact_param_vjp: input mismatch"
        );
        match self {
            Layer::Dense(d) => {
                let (out_dim, in_dim) = (d.weights.rows(), d.weights.cols());
                let mut out = Matrix::zeros(rows.rows(), self.num_params());
                for r in 0..rows.rows() {
                    for j in 0..out_dim {
                        let g = rows[(r, j)];
                        if g == 0.0 {
                            continue;
                        }
                        let base = j * in_dim;
                        for (k, &xk) in input.iter().enumerate() {
                            out[(r, base + k)] += g * xk;
                        }
                        // Bias entry for unit j.
                        out[(r, out_dim * in_dim + j)] += g;
                    }
                }
                out
            }
            Layer::Conv2d(c) => {
                let mut out = Matrix::zeros(rows.rows(), self.num_params());
                let nw = c.weights.len();
                c.for_each_connection(|out_idx, w_idx, in_idx| {
                    let x = input[in_idx];
                    for r in 0..rows.rows() {
                        out[(r, w_idx)] += rows[(r, out_idx)] * x;
                    }
                });
                // Bias connections: pre-activation (oc, oy, ox) depends on bias[oc].
                let (oh, ow) = (c.out_height(), c.out_width());
                for oc in 0..c.out_channels {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let out_idx = (oc * oh + oy) * ow + ox;
                            for r in 0..rows.rows() {
                                out[(r, nw + oc)] += rows[(r, out_idx)];
                            }
                        }
                    }
                }
                out
            }
            Layer::MaxPool2d(_) | Layer::AvgPool2d(_) => Matrix::zeros(rows.rows(), 0),
        }
    }
}

fn elementwise_crossing(activation: Activation) -> CrossingSpec {
    match activation.breakpoints() {
        None => CrossingSpec::NotPiecewiseLinear,
        Some(bps) if bps.is_empty() => CrossingSpec::None,
        Some(bps) => CrossingSpec::ElementwiseThresholds(bps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_linalg::approx_eq_slice;

    fn dense_example() -> Layer {
        Layer::dense(
            Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0]]),
            vec![0.0, -1.0],
            Activation::Relu,
        )
    }

    #[test]
    fn dense_forward() {
        let layer = dense_example();
        assert_eq!(layer.input_dim(), 2);
        assert_eq!(layer.output_dim(), 2);
        let z = layer.preactivation(&[1.0, 2.0]);
        assert_eq!(z, vec![-1.0, 3.5]);
        assert_eq!(layer.forward(&[1.0, 2.0]), vec![0.0, 3.5]);
    }

    #[test]
    fn dense_params_roundtrip() {
        let mut layer = dense_example();
        let p = layer.params();
        assert_eq!(p.len(), layer.num_params());
        assert_eq!(p, vec![1.0, -1.0, 0.5, 2.0, 0.0, -1.0]);
        layer.add_to_params(&[0.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
        assert_eq!(layer.preactivation(&[0.0, 0.0]), vec![1.0, 0.0]);
        let snapshot = layer.params();
        layer.set_params(&snapshot);
        assert_eq!(layer.params(), snapshot);
    }

    #[test]
    fn dense_param_vjp_matches_finite_difference() {
        let layer = dense_example();
        let input = vec![0.7, -1.3];
        // rows = identity: the vjp equals the full Jacobian of z wrt params.
        let rows = Matrix::identity(2);
        let jac = layer.preact_param_vjp(&rows, &input);
        let h = 1e-6;
        let base = layer.preactivation(&input);
        for p in 0..layer.num_params() {
            let mut bumped = layer.clone();
            let mut delta = vec![0.0; layer.num_params()];
            delta[p] = h;
            bumped.add_to_params(&delta);
            let z = bumped.preactivation(&input);
            for o in 0..2 {
                let fd = (z[o] - base[o]) / h;
                assert!(
                    (fd - jac[(o, p)]).abs() < 1e-5,
                    "param {p} output {o}: fd {fd} vs {}",
                    jac[(o, p)]
                );
            }
        }
    }

    #[test]
    fn dense_input_vjp_matches_weights() {
        let layer = dense_example();
        let rows = Matrix::identity(2);
        let jac = layer.preact_input_vjp(&rows);
        assert_eq!(jac, Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0]]));
    }

    fn conv_example() -> Layer {
        Layer::Conv2d(Conv2dLayer {
            in_channels: 1,
            in_height: 3,
            in_width: 3,
            out_channels: 2,
            kernel_h: 2,
            kernel_w: 2,
            stride: 1,
            padding: 0,
            weights: vec![
                // filter 0
                1.0, 0.0, 0.0, 1.0, // identity-ish
                // filter 1
                0.0, 1.0, 1.0, 0.0,
            ],
            bias: vec![0.5, -0.5],
            activation: Activation::Identity,
        })
    }

    #[test]
    fn conv_forward_shapes_and_values() {
        let layer = conv_example();
        assert_eq!(layer.input_dim(), 9);
        assert_eq!(layer.output_dim(), 2 * 2 * 2);
        let input: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let z = layer.preactivation(&input);
        // Filter 0 at (0,0): x[0,0] + x[1,1] + bias = 1 + 5 + 0.5 = 6.5
        assert_eq!(z[0], 6.5);
        // Filter 1 at (0,0): x[0,1] + x[1,0] - 0.5 = 2 + 4 - 0.5 = 5.5
        assert_eq!(z[4], 5.5);
    }

    #[test]
    fn conv_param_vjp_matches_finite_difference() {
        let layer = conv_example();
        let input: Vec<f64> = (0..9).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let out_dim = layer.output_dim();
        let rows = Matrix::identity(out_dim);
        let jac = layer.preact_param_vjp(&rows, &input);
        let base = layer.preactivation(&input);
        let h = 1e-6;
        for p in 0..layer.num_params() {
            let mut bumped = layer.clone();
            let mut delta = vec![0.0; layer.num_params()];
            delta[p] = h;
            bumped.add_to_params(&delta);
            let z = bumped.preactivation(&input);
            for o in 0..out_dim {
                let fd = (z[o] - base[o]) / h;
                assert!((fd - jac[(o, p)]).abs() < 1e-5, "param {p} out {o}");
            }
        }
    }

    #[test]
    fn conv_input_vjp_matches_finite_difference() {
        let layer = conv_example();
        let input: Vec<f64> = (0..9).map(|i| (i as f64) * 0.1).collect();
        let out_dim = layer.output_dim();
        let rows = Matrix::identity(out_dim);
        let jac = layer.preact_input_vjp(&rows);
        let base = layer.preactivation(&input);
        let h = 1e-6;
        for k in 0..9 {
            let mut bumped = input.clone();
            bumped[k] += h;
            let z = layer.preactivation(&bumped);
            for o in 0..out_dim {
                let fd = (z[o] - base[o]) / h;
                assert!((fd - jac[(o, k)]).abs() < 1e-5, "input {k} out {o}");
            }
        }
    }

    #[test]
    fn maxpool_forward_and_pattern() {
        let layer = Layer::MaxPool2d(Pool2dLayer {
            channels: 1,
            in_height: 2,
            in_width: 4,
            pool_h: 2,
            pool_w: 2,
            stride: 2,
        });
        assert_eq!(layer.input_dim(), 8);
        assert_eq!(layer.output_dim(), 2);
        let input = vec![1.0, 5.0, 2.0, 0.0, 3.0, -1.0, 9.0, 4.0];
        assert_eq!(layer.forward(&input), vec![5.0, 9.0]);
        // Window 0 covers indices [0,1,4,5]; argmax is position 1 (value 5).
        assert_eq!(layer.activation_pattern(&input), vec![1, 2]);
        // The linearisation selects the argmax entries.
        let lin = layer.linearize_activation(&input);
        assert_eq!(lin.apply(&input), vec![5.0, 9.0]);
        // On a *different* value-channel vector it still selects positions 1 and 6.
        let other: Vec<f64> = (0..8).map(|i| i as f64 * 10.0).collect();
        assert_eq!(lin.apply(&other), vec![10.0, 60.0]);
    }

    #[test]
    fn batch_entry_points_match_per_vector_calls() {
        let layers = vec![
            dense_example(),
            conv_example(),
            Layer::MaxPool2d(Pool2dLayer {
                channels: 1,
                in_height: 2,
                in_width: 4,
                pool_h: 2,
                pool_w: 2,
                stride: 2,
            }),
            Layer::AvgPool2d(Pool2dLayer {
                channels: 1,
                in_height: 2,
                in_width: 4,
                pool_h: 2,
                pool_w: 2,
                stride: 2,
            }),
        ];
        for layer in layers {
            let dim = layer.input_dim();
            let batch: Vec<Vec<f64>> = (0..5)
                .map(|k| (0..dim).map(|i| (k * dim + i) as f64 * 0.3 - 2.0).collect())
                .collect();
            let zs = layer.preactivation_batch(&batch);
            let outs = layer.forward_batch(&batch);
            for (i, input) in batch.iter().enumerate() {
                assert_eq!(zs[i], layer.preactivation(input));
                assert_eq!(outs[i], layer.forward(input));
            }
            assert_eq!(layer.activate_batch(&zs), outs);
        }
    }

    #[test]
    fn flat_batch_entry_points_are_bit_identical_to_per_point() {
        let layers = vec![
            dense_example(),
            conv_example(),
            Layer::MaxPool2d(Pool2dLayer {
                channels: 1,
                in_height: 2,
                in_width: 4,
                pool_h: 2,
                pool_w: 2,
                stride: 2,
            }),
            Layer::AvgPool2d(Pool2dLayer {
                channels: 1,
                in_height: 2,
                in_width: 4,
                pool_h: 2,
                pool_w: 2,
                stride: 2,
            }),
        ];
        for layer in layers {
            let dim = layer.input_dim();
            let rows: Vec<Vec<f64>> = (0..5)
                .map(|k| {
                    (0..dim)
                        .map(|i| ((k * dim + i) as f64 * 0.9).sin() * 3.0)
                        .collect()
                })
                .collect();
            let flat = FlatBatch::from_rows(dim, &rows);
            let z_flat = layer.preactivation_batch_flat(&flat);
            let out_flat = layer.forward_batch_flat(&flat);
            for (i, input) in rows.iter().enumerate() {
                let z = layer.preactivation(input);
                // Bitwise comparison: the flat GEMM path must agree with
                // the per-point path on every bit, not just approximately.
                assert!(z_flat
                    .row(i)
                    .iter()
                    .zip(&z)
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
                assert!(out_flat
                    .row(i)
                    .iter()
                    .zip(&layer.forward(input))
                    .all(|(a, b)| a.to_bits() == b.to_bits()));
            }
            assert_eq!(
                layer.linearize_activation_batch_flat(&z_flat),
                z_flat
                    .rows()
                    .map(|z| layer.linearize_activation(z))
                    .collect::<Vec<_>>()
            );
            // Empty batches flow through every entry point.
            let empty = FlatBatch::new(dim);
            assert!(layer.forward_batch_flat(&empty).is_empty());
        }
    }

    #[test]
    fn flat_windows_match_nested_windows() {
        let p = Pool2dLayer {
            channels: 2,
            in_height: 4,
            in_width: 6,
            pool_h: 2,
            pool_w: 3,
            stride: 1,
        };
        let nested = p.windows();
        let flat = p.flat_windows();
        assert_eq!(flat.count(), nested.len());
        for (w, expected) in flat.iter().zip(&nested) {
            assert_eq!(w, expected.as_slice());
        }
    }

    #[test]
    fn linearize_activation_batch_matches_per_vector_calls() {
        let layers = vec![
            dense_example(),
            conv_example(),
            Layer::MaxPool2d(Pool2dLayer {
                channels: 1,
                in_height: 2,
                in_width: 4,
                pool_h: 2,
                pool_w: 2,
                stride: 2,
            }),
            Layer::AvgPool2d(Pool2dLayer {
                channels: 1,
                in_height: 2,
                in_width: 4,
                pool_h: 2,
                pool_w: 2,
                stride: 2,
            }),
        ];
        for layer in layers {
            let dim = layer.preactivation_dim();
            let zs: Vec<Vec<f64>> = (0..4)
                .map(|k| {
                    (0..dim)
                        .map(|i| ((k * dim + i) as f64 * 0.7).cos())
                        .collect()
                })
                .collect();
            let batch = layer.linearize_activation_batch(&zs);
            assert_eq!(batch.len(), zs.len());
            for (z, lin) in zs.iter().zip(&batch) {
                assert_eq!(*lin, layer.linearize_activation(z));
            }
        }
    }

    #[test]
    fn avgpool_is_affine() {
        let layer = Layer::AvgPool2d(Pool2dLayer {
            channels: 1,
            in_height: 2,
            in_width: 2,
            pool_h: 2,
            pool_w: 2,
            stride: 2,
        });
        let input = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(layer.forward(&input), vec![2.5]);
        assert_eq!(layer.crossing_spec(), CrossingSpec::None);
        assert_eq!(layer.num_params(), 0);
    }

    #[test]
    fn linearization_matches_activation_at_center() {
        let layer = dense_example();
        let z = vec![-0.5, 1.5];
        let lin = layer.linearize_activation(&z);
        assert!(approx_eq_slice(&lin.apply(&z), &layer.activate(&z), 1e-12));
    }

    #[test]
    fn crossing_specs() {
        assert_eq!(
            dense_example().crossing_spec(),
            CrossingSpec::ElementwiseThresholds(vec![0.0])
        );
        let tanh_layer = Layer::dense(Matrix::identity(2), vec![0.0, 0.0], Activation::Tanh);
        assert_eq!(tanh_layer.crossing_spec(), CrossingSpec::NotPiecewiseLinear);
        assert!(!tanh_layer.is_piecewise_linear());
    }

    #[test]
    fn activation_linearization_vjp_elementwise() {
        let lin = ActivationLinearization::Elementwise {
            slopes: vec![0.0, 1.0, 2.0],
            intercepts: vec![0.0; 3],
        };
        let rows = Matrix::from_rows(&[vec![1.0, 1.0, 1.0]]);
        assert_eq!(lin.vjp(&rows), Matrix::from_rows(&[vec![0.0, 1.0, 2.0]]));
    }
}
