//! Gradient-based training: backpropagation, losses, and SGD.
//!
//! The repair algorithms themselves never use gradient descent; this module
//! exists for two reasons that mirror the paper's evaluation:
//!
//! 1. training the "buggy" networks that the experiments then repair
//!    (the paper uses pre-trained SqueezeNet/MNIST/ACAS networks), and
//! 2. the fine-tuning (FT) and modified fine-tuning (MFT) baselines of §7.

use crate::network::Network;
use prdnn_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Loss functions supported by the trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Softmax followed by cross-entropy against an integer class label.
    SoftmaxCrossEntropy,
    /// Mean squared error against a target vector encoded one-hot.
    MeanSquaredError,
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|e| e / sum).collect()
}

/// Cross-entropy of a softmax distribution against the true `label`.
pub fn cross_entropy(logits: &[f64], label: usize) -> f64 {
    let probs = softmax(logits);
    -(probs[label].max(1e-12)).ln()
}

/// Gradient of the loss with respect to the network output logits.
fn loss_gradient(loss: Loss, logits: &[f64], label: usize) -> (f64, Vec<f64>) {
    match loss {
        Loss::SoftmaxCrossEntropy => {
            let probs = softmax(logits);
            let value = -(probs[label].max(1e-12)).ln();
            let mut grad = probs;
            grad[label] -= 1.0;
            (value, grad)
        }
        Loss::MeanSquaredError => {
            let n = logits.len() as f64;
            let mut grad = Vec::with_capacity(logits.len());
            let mut value = 0.0;
            for (i, &o) in logits.iter().enumerate() {
                let target = if i == label { 1.0 } else { 0.0 };
                value += (o - target) * (o - target) / n;
                grad.push(2.0 * (o - target) / n);
            }
            (value, grad)
        }
    }
}

/// Per-layer parameter gradients for one example.
///
/// Pooling layers contribute empty gradient vectors.
pub fn backprop(net: &Network, input: &[f64], label: usize, loss: Loss) -> (f64, Vec<Vec<f64>>) {
    let trace = net.forward_trace(input);
    let (loss_value, out_grad) = loss_gradient(loss, trace.output(), label);

    let mut grads: Vec<Vec<f64>> = vec![Vec::new(); net.num_layers()];
    // Upstream gradient with respect to the current layer's *output*.
    let mut upstream = out_grad;
    for i in (0..net.num_layers()).rev() {
        let layer = net.layer(i);
        let layer_input = if i == 0 {
            trace.input.as_slice()
        } else {
            trace.outputs[i - 1].as_slice()
        };
        let z = &trace.preactivations[i];
        // dL/dz = upstream · D where D is the activation Jacobian at z.
        let lin = layer.linearize_activation(z);
        let upstream_row = Matrix::from_flat(1, upstream.len(), upstream.clone());
        let dz = lin.vjp(&upstream_row);
        // Parameter gradient: dL/dθ = dz · ∂z/∂θ.
        grads[i] = layer.preact_param_vjp(&dz, layer_input).into_flat();
        // Input gradient for the next (earlier) layer: dL/dx = dz · ∂z/∂x.
        upstream = layer.preact_input_vjp(&dz).into_flat();
    }
    (loss_value, grads)
}

/// Configuration for [`sgd_train`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Loss function.
    pub loss: Loss,
    /// If set, only this layer's parameters are updated (used by MFT).
    pub only_layer: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            learning_rate: 0.01,
            momentum: 0.9,
            epochs: 10,
            batch_size: 16,
            loss: Loss::SoftmaxCrossEntropy,
            only_layer: None,
        }
    }
}

/// Trains `net` in place with mini-batch SGD on a labelled dataset.
///
/// Returns the average loss of the final epoch.
///
/// # Panics
///
/// Panics if `inputs` and `labels` have different lengths or the dataset is
/// empty.
pub fn sgd_train(
    net: &mut Network,
    inputs: &[Vec<f64>],
    labels: &[usize],
    config: &TrainConfig,
    rng: &mut impl Rng,
) -> f64 {
    assert_eq!(
        inputs.len(),
        labels.len(),
        "sgd_train: inputs/labels mismatch"
    );
    assert!(!inputs.is_empty(), "sgd_train: empty dataset");
    let mut velocity: Vec<Vec<f64>> = (0..net.num_layers())
        .map(|i| vec![0.0; net.layer(i).num_params()])
        .collect();
    let mut order: Vec<usize> = (0..inputs.len()).collect();
    let mut last_epoch_loss = 0.0;

    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size.max(1)) {
            let mut batch_grads: Vec<Vec<f64>> = (0..net.num_layers())
                .map(|i| vec![0.0; net.layer(i).num_params()])
                .collect();
            for &idx in batch {
                let (loss, grads) = backprop(net, &inputs[idx], labels[idx], config.loss);
                epoch_loss += loss;
                for (acc, g) in batch_grads.iter_mut().zip(&grads) {
                    for (a, gi) in acc.iter_mut().zip(g) {
                        *a += gi;
                    }
                }
            }
            let scale = 1.0 / batch.len() as f64;
            for layer_idx in 0..net.num_layers() {
                if let Some(only) = config.only_layer {
                    if layer_idx != only {
                        continue;
                    }
                }
                if batch_grads[layer_idx].is_empty() {
                    continue;
                }
                let v = &mut velocity[layer_idx];
                let update: Vec<f64> = batch_grads[layer_idx]
                    .iter()
                    .zip(v.iter_mut())
                    .map(|(g, vel)| {
                        *vel = config.momentum * *vel - config.learning_rate * g * scale;
                        *vel
                    })
                    .collect();
                net.layer_mut(layer_idx).add_to_params(&update);
            }
        }
        last_epoch_loss = epoch_loss / inputs.len() as f64;
    }
    last_epoch_loss
}

/// A labelled classification dataset (inputs plus integer labels).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Input vectors.
    pub inputs: Vec<Vec<f64>>,
    /// Class label per input.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset from parallel input/label vectors.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn new(inputs: Vec<Vec<f64>>, labels: Vec<usize>) -> Self {
        assert_eq!(
            inputs.len(),
            labels.len(),
            "dataset: inputs/labels mismatch"
        );
        Dataset { inputs, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Accuracy of `net` on this dataset.
    pub fn accuracy(&self, net: &Network) -> f64 {
        net.accuracy(&self.inputs, &self.labels)
    }

    /// Returns the subset of examples misclassified by `net`.
    pub fn misclassified(&self, net: &Network) -> Dataset {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for (x, &y) in self.inputs.iter().zip(&self.labels) {
            if net.classify(x) != y {
                inputs.push(x.clone());
                labels.push(y);
            }
        }
        Dataset { inputs, labels }
    }

    /// Takes the first `n` examples (or all of them if fewer exist).
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        Dataset {
            inputs: self.inputs[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
        }
    }

    /// Splits the dataset into two at index `n`.
    pub fn split_at(&self, n: usize) -> (Dataset, Dataset) {
        let n = n.min(self.len());
        (
            Dataset {
                inputs: self.inputs[..n].to_vec(),
                labels: self.labels[..n].to_vec(),
            },
            Dataset {
                inputs: self.inputs[n..].to_vec(),
                labels: self.labels[n..].to_vec(),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn backprop_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = Network::mlp(&[3, 5, 4, 2], Activation::Tanh, &mut rng);
        let input = vec![0.3, -0.8, 0.5];
        let label = 1;
        let (_, grads) = backprop(&net, &input, label, Loss::SoftmaxCrossEntropy);
        let h = 1e-6;
        for (layer_idx, layer_grads) in grads.iter().enumerate() {
            let n = net.layer(layer_idx).num_params();
            // Spot-check a few parameters per layer to keep the test fast.
            for p in (0..n).step_by(n.max(1) / 5 + 1) {
                let mut bumped = net.clone();
                let mut delta = vec![0.0; n];
                delta[p] = h;
                bumped.layer_mut(layer_idx).add_to_params(&delta);
                let plus = cross_entropy(&bumped.forward(&input), label);
                let mut bumped2 = net.clone();
                delta[p] = -h;
                bumped2.layer_mut(layer_idx).add_to_params(&delta);
                let minus = cross_entropy(&bumped2.forward(&input), label);
                let fd = (plus - minus) / (2.0 * h);
                assert!(
                    (fd - layer_grads[p]).abs() < 1e-4,
                    "layer {layer_idx} param {p}: fd {fd} vs {}",
                    layer_grads[p]
                );
            }
        }
    }

    #[test]
    fn sgd_learns_a_separable_problem() {
        let mut rng = StdRng::seed_from_u64(3);
        // Two well-separated Gaussian-ish blobs in 2-D.
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let label = i % 2;
            let centre = if label == 0 { [-1.5, -1.5] } else { [1.5, 1.5] };
            inputs.push(vec![
                centre[0] + rng.gen_range(-0.5..0.5),
                centre[1] + rng.gen_range(-0.5..0.5),
            ]);
            labels.push(label);
        }
        let mut net = Network::mlp(&[2, 8, 2], Activation::Relu, &mut rng);
        let config = TrainConfig {
            epochs: 40,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        sgd_train(&mut net, &inputs, &labels, &config, &mut rng);
        assert!(net.accuracy(&inputs, &labels) > 0.95);
    }

    #[test]
    fn only_layer_restricts_updates() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = Network::mlp(&[2, 4, 2], Activation::Relu, &mut rng);
        let before_l0 = net.layer(0).params();
        let before_l1 = net.layer(1).params();
        let inputs = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let labels = vec![0, 1];
        let config = TrainConfig {
            epochs: 3,
            only_layer: Some(1),
            ..TrainConfig::default()
        };
        sgd_train(&mut net, &inputs, &labels, &config, &mut rng);
        assert_eq!(net.layer(0).params(), before_l0, "layer 0 must be frozen");
        assert_ne!(net.layer(1).params(), before_l1, "layer 1 must move");
    }

    #[test]
    fn dataset_utilities() {
        let data = Dataset::new(vec![vec![0.0], vec![1.0], vec![2.0]], vec![0, 1, 0]);
        assert_eq!(data.len(), 3);
        assert!(!data.is_empty());
        let (a, b) = data.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(data.take(10).len(), 3);
    }

    #[test]
    fn mse_loss_gradient_matches_fd() {
        let logits = vec![0.2, -0.4, 0.9];
        let (value, grad) = loss_gradient(Loss::MeanSquaredError, &logits, 2);
        let h = 1e-6;
        for i in 0..3 {
            let mut bumped = logits.clone();
            bumped[i] += h;
            let (v2, _) = loss_gradient(Loss::MeanSquaredError, &bumped, 2);
            let fd = (v2 - value) / h;
            assert!((fd - grad[i]).abs() < 1e-5);
        }
    }
}
