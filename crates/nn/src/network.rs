//! Feed-forward networks: composition of layers, traces, activation patterns.

use crate::activation::Activation;
use crate::batch::FlatBatch;
use crate::layer::Layer;
use prdnn_linalg::{vector, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward deep neural network: an ordered list of layers
/// (Definition 2.1/2.2).
///
/// # Example
///
/// ```
/// use prdnn_nn::{Activation, Layer, Network};
/// use prdnn_linalg::Matrix;
///
/// // The paper's running example N1 (Figure 3a).
/// let n1 = Network::new(vec![
///     Layer::dense(
///         Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![1.0]]),
///         vec![0.0, 0.0, -1.0],
///         Activation::Relu,
///     ),
///     Layer::dense(
///         Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]),
///         vec![0.0],
///         Activation::Identity,
///     ),
/// ]);
/// assert_eq!(n1.forward(&[0.5]), vec![-0.5]);
/// assert_eq!(n1.forward(&[1.5]), vec![-1.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

/// All intermediate values from a forward pass: per-layer pre-activations
/// and post-activation outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardTrace {
    /// The network input.
    pub input: Vec<f64>,
    /// Pre-activation `z^(i)` of every layer.
    pub preactivations: Vec<Vec<f64>>,
    /// Post-activation output `v^(i)` of every layer.
    pub outputs: Vec<Vec<f64>>,
}

impl ForwardTrace {
    /// The final network output.
    pub fn output(&self) -> &[f64] {
        self.outputs
            .last()
            .map(|v| v.as_slice())
            .unwrap_or(&self.input)
    }
}

/// The activation pattern of a network at a point (Definition 2.5): for each
/// layer, the linear piece each unit (or pooling window) falls into.
pub type ActivationPattern = Vec<Vec<i8>>;

impl Network {
    /// Creates a network from an ordered list of layers.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or if consecutive layer dimensions do not
    /// chain (`layer[i].output_dim() != layer[i+1].input_dim()`).
    pub fn new(layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "network must have at least one layer");
        for i in 0..layers.len() - 1 {
            assert_eq!(
                layers[i].output_dim(),
                layers[i + 1].input_dim(),
                "layer {} output dim {} does not match layer {} input dim {}",
                i,
                layers[i].output_dim(),
                i + 1,
                layers[i + 1].input_dim()
            );
        }
        Network { layers }
    }

    /// Builds a fully-connected network ("MLP") with the given layer sizes,
    /// hidden activation, and identity output layer, using Xavier-style
    /// random initialisation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn mlp(sizes: &[usize], hidden: Activation, rng: &mut impl Rng) -> Self {
        assert!(
            sizes.len() >= 2,
            "mlp needs at least input and output sizes"
        );
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let (fan_in, fan_out) = (sizes[i], sizes[i + 1]);
            let bound = (6.0 / (fan_in + fan_out) as f64).sqrt();
            let weights = Matrix::from_fn(fan_out, fan_in, |_, _| rng.gen_range(-bound..bound));
            let bias = vec![0.0; fan_out];
            let activation = if i + 1 == sizes.len() - 1 {
                Activation::Identity
            } else {
                hidden
            };
            layers.push(Layer::dense(weights, bias, activation));
        }
        Network::new(layers)
    }

    /// The network's layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to a single layer.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn layer_mut(&mut self, index: usize) -> &mut Layer {
        &mut self.layers[index]
    }

    /// A single layer.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn layer(&self, index: usize) -> &Layer {
        &self.layers[index]
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Network input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Network output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().output_dim()
    }

    /// Total number of parameters across all layers.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Layer::num_params).sum()
    }

    /// Indices of layers that have parameters and can therefore be repaired
    /// or fine-tuned (dense and convolutional layers).
    pub fn repairable_layers(&self) -> Vec<usize> {
        (0..self.layers.len())
            .filter(|&i| self.layers[i].num_params() > 0)
            .collect()
    }

    /// Evaluates the network on `input` (Definition 2.2).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.input_dim()`.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        let mut v = input.to_vec();
        for layer in &self.layers {
            v = layer.forward(&v);
        }
        v
    }

    /// Evaluates the network on a batch of inputs, layer by layer.
    ///
    /// Equivalent to mapping [`Self::forward`] over `inputs`, but pushes the
    /// whole batch through one layer at a time so per-layer setup (e.g.
    /// pooling window enumeration) is paid once per layer, not once per
    /// input.
    pub fn forward_batch(&self, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.forward_batch_flat(&FlatBatch::from_rows(self.input_dim(), inputs))
            .to_rows()
    }

    /// [`Self::forward_batch`] on a batch-major flat buffer: the batch stays
    /// in one contiguous allocation from input to output, and every dense
    /// layer is a single blocked GEMM call.  Bit-identical to mapping
    /// [`Self::forward`] (the GEMM shares the per-point accumulation order).
    pub fn forward_batch_flat(&self, inputs: &FlatBatch) -> FlatBatch {
        let (first, rest) = self
            .layers
            .split_first()
            .expect("network has at least one layer");
        let mut batch = first.forward_batch_flat(inputs);
        for layer in rest {
            batch = layer.forward_batch_flat(&batch);
        }
        batch
    }

    /// [`Self::forward_batch`] fanned across a thread pool.
    ///
    /// The batch is cut into contiguous chunks, each pushed through the
    /// whole network on a pool worker; chunk results are spliced back in
    /// input order, so the output is identical to [`Self::forward_batch`]
    /// for every thread count (no per-input arithmetic crosses a chunk
    /// boundary).
    pub fn forward_batch_in(
        &self,
        pool: &prdnn_par::ThreadPool,
        inputs: &[Vec<f64>],
    ) -> Vec<Vec<f64>> {
        let chunk_size = pool.even_chunk_size(inputs.len());
        pool.par_chunks(inputs, chunk_size, |chunk| self.forward_batch(chunk))
            .into_iter()
            .flatten()
            .collect()
    }

    /// Evaluates the network, returning every intermediate value.
    pub fn forward_trace(&self, input: &[f64]) -> ForwardTrace {
        let mut preactivations = Vec::with_capacity(self.layers.len());
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut v = input.to_vec();
        for layer in &self.layers {
            let z = layer.preactivation(&v);
            v = layer.activate(&z);
            preactivations.push(z);
            outputs.push(v.clone());
        }
        ForwardTrace {
            input: input.to_vec(),
            preactivations,
            outputs,
        }
    }

    /// Predicted class label: `argmax` of the output logits.
    pub fn classify(&self, input: &[f64]) -> usize {
        vector::argmax(&self.forward(input))
    }

    /// Fraction of `(input, label)` pairs classified correctly.
    ///
    /// Returns 1.0 for an empty dataset.
    pub fn accuracy(&self, inputs: &[Vec<f64>], labels: &[usize]) -> f64 {
        assert_eq!(
            inputs.len(),
            labels.len(),
            "accuracy: inputs/labels length mismatch"
        );
        if inputs.is_empty() {
            return 1.0;
        }
        let correct = inputs
            .iter()
            .zip(labels)
            .filter(|(x, &label)| self.classify(x) == label)
            .count();
        correct as f64 / inputs.len() as f64
    }

    /// The activation pattern of the network at `input` (Definition 2.5).
    pub fn activation_pattern(&self, input: &[f64]) -> ActivationPattern {
        let trace = self.forward_trace(input);
        self.layers
            .iter()
            .zip(&trace.preactivations)
            .map(|(layer, z)| layer.activation_pattern(z))
            .collect()
    }

    /// Whether every layer of the network is piecewise linear
    /// (required by polytope repair, §6).
    pub fn is_piecewise_linear(&self) -> bool {
        self.layers.iter().all(Layer::is_piecewise_linear)
    }

    /// Flattened parameters of every layer, concatenated in layer order.
    pub fn params(&self) -> Vec<f64> {
        let mut p = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            p.extend(layer.params());
        }
        p
    }

    /// Sets all parameters from a flat vector in [`Self::params`] order.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.num_params()`.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(params.len(), self.num_params(), "set_params: wrong length");
        let mut offset = 0;
        for layer in &mut self.layers {
            let n = layer.num_params();
            layer.set_params(&params[offset..offset + n]);
            offset += n;
        }
    }

    /// Largest absolute difference between this network's parameters and
    /// `other`'s (used to measure repair size across whole networks).
    ///
    /// # Panics
    ///
    /// Panics if the two networks have different parameter counts.
    pub fn param_linf_distance(&self, other: &Network) -> f64 {
        vector::linf_distance(&self.params(), &other.params())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example N1 (Figure 3a): one input, three ReLU
    /// hidden nodes, one output.
    pub(crate) fn paper_n1() -> Network {
        Network::new(vec![
            Layer::dense(
                Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![1.0]]),
                vec![0.0, 0.0, -1.0],
                Activation::Relu,
            ),
            Layer::dense(
                Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ])
    }

    #[test]
    fn n1_matches_paper_values() {
        let n1 = paper_n1();
        // Figure 3(c): N1(0.5) = -0.5 and N1(1.5) = -1 (§3.1).
        assert!((n1.forward(&[0.5])[0] + 0.5).abs() < 1e-12);
        assert!((n1.forward(&[1.5])[0] + 1.0).abs() < 1e-12);
        // Endpoint checks of the three linear regions: on [-1, 0] the output
        // follows y = x (only h1 is active and its output weight is -1).
        assert!((n1.forward(&[-1.0])[0] + 1.0).abs() < 1e-12);
        assert!((n1.forward(&[0.0])[0] - 0.0).abs() < 1e-12);
        assert!((n1.forward(&[1.0])[0] + 1.0).abs() < 1e-12);
        assert!((n1.forward(&[2.0])[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn n1_activation_patterns_match_paper_regions() {
        let n1 = paper_n1();
        // Region [-1, 0]: only h1 active; region [0, 1]: only h2; region
        // [1, 2]: h2 and h3 active.
        assert_eq!(n1.activation_pattern(&[-0.5])[0], vec![1, 0, 0]);
        assert_eq!(n1.activation_pattern(&[0.5])[0], vec![0, 1, 0]);
        assert_eq!(n1.activation_pattern(&[1.5])[0], vec![0, 1, 1]);
    }

    #[test]
    fn trace_is_consistent_with_forward() {
        let n1 = paper_n1();
        let trace = n1.forward_trace(&[0.7]);
        assert_eq!(trace.output(), n1.forward(&[0.7]).as_slice());
        assert_eq!(trace.preactivations.len(), 2);
        assert_eq!(trace.outputs.len(), 2);
    }

    #[test]
    fn mlp_builder_shapes() {
        let mut rng = rand::rngs::mock::StepRng::new(42, 13);
        let net = Network::mlp(&[4, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(net.num_layers(), 2);
        assert_eq!(net.input_dim(), 4);
        assert_eq!(net.output_dim(), 3);
        assert_eq!(net.layer(0).activation(), Some(Activation::Relu));
        assert_eq!(net.layer(1).activation(), Some(Activation::Identity));
        assert_eq!(net.num_params(), 4 * 8 + 8 + 8 * 3 + 3);
        assert!(net.is_piecewise_linear());
    }

    #[test]
    fn forward_batch_matches_forward() {
        let mut rng = rand::rngs::mock::StepRng::new(7, 11);
        let net = Network::mlp(&[3, 6, 4], Activation::Relu, &mut rng);
        let batch: Vec<Vec<f64>> = (0..6)
            .map(|k| (0..3).map(|i| (k + i) as f64 * 0.4 - 1.0).collect())
            .collect();
        let outs = net.forward_batch(&batch);
        assert_eq!(outs.len(), batch.len());
        for (input, out) in batch.iter().zip(&outs) {
            assert_eq!(*out, net.forward(input));
        }
        assert!(net.forward_batch(&[]).is_empty());
    }

    #[test]
    fn forward_batch_in_is_bit_identical_for_every_thread_count() {
        let mut rng = rand::rngs::mock::StepRng::new(3, 17);
        let net = Network::mlp(&[4, 9, 7, 3], Activation::Relu, &mut rng);
        let batch: Vec<Vec<f64>> = (0..37)
            .map(|k| (0..4).map(|i| ((k * 4 + i) as f64).sin()).collect())
            .collect();
        let serial = net.forward_batch(&batch);
        for threads in [1, 2, 4] {
            let pool = prdnn_par::ThreadPool::new(threads);
            assert_eq!(net.forward_batch_in(&pool, &batch), serial);
            assert!(net.forward_batch_in(&pool, &[]).is_empty());
        }
    }

    #[test]
    fn params_roundtrip() {
        let n1 = paper_n1();
        let mut other = paper_n1();
        let p = n1.params();
        assert_eq!(p.len(), n1.num_params());
        other.set_params(&p);
        assert_eq!(other, n1);
        assert_eq!(n1.param_linf_distance(&other), 0.0);
        // Perturb one parameter.
        let mut perturbed = p.clone();
        perturbed[0] += 0.25;
        other.set_params(&perturbed);
        assert!((n1.param_linf_distance(&other) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_correct_labels() {
        let n1 = paper_n1();
        // Single output network: argmax is always 0, so label 0 is "correct".
        let inputs = vec![vec![0.1], vec![0.4]];
        assert_eq!(n1.accuracy(&inputs, &[0, 0]), 1.0);
        assert_eq!(n1.accuracy(&[], &[]), 1.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_layer_dims_panic() {
        Network::new(vec![
            Layer::dense(Matrix::identity(2), vec![0.0, 0.0], Activation::Relu),
            Layer::dense(Matrix::identity(3), vec![0.0; 3], Activation::Identity),
        ]);
    }
}
