//! Element-wise activation functions, their derivatives, and linearisations.
//!
//! The paper's Decoupled DNN construction (Definition 4.3) evaluates the
//! value channel with the *linearisation* of the activation function around
//! the corresponding activation-channel pre-activation.  This module provides
//! the activation functions used in the evaluation (ReLU for the image and
//! ACAS networks) together with the smooth ones (Tanh, Sigmoid) used to show
//! point repair works for non-piecewise-linear networks.

use serde::{Deserialize, Serialize};

/// An element-wise activation function `σ : ℝ → ℝ` applied component-wise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)` — the paper's running example and evaluation networks.
    Relu,
    /// `x` for `x ≥ 0`, `αx` otherwise.
    LeakyRelu {
        /// Negative-side slope.
        alpha: f64,
    },
    /// `clamp(x, -1, 1)` — piecewise linear with two breakpoints.
    HardTanh,
    /// Hyperbolic tangent (smooth, not PWL).
    Tanh,
    /// Logistic sigmoid (smooth, not PWL).
    Sigmoid,
    /// The identity function (used for final logit layers).
    Identity,
}

impl Activation {
    /// Applies the activation to a single scalar.
    pub fn apply_scalar(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu { alpha } => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::HardTanh => x.clamp(-1.0, 1.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative `σ'(x)` at a single scalar.
    ///
    /// At the (measure-zero) breakpoints of the PWL activations we return the
    /// right-derivative, matching Appendix C of the paper (any consistent
    /// choice of "linearisation" at non-differentiable points is sound for
    /// point repair).
    pub fn derivative_scalar(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu { alpha } => {
                if x >= 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::HardTanh => {
                if (-1.0..1.0).contains(&x) {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
            Activation::Identity => 1.0,
        }
    }

    /// Applies the activation component-wise.
    pub fn apply(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply_scalar(x)).collect()
    }

    /// Component-wise derivative.
    pub fn derivative(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.derivative_scalar(x)).collect()
    }

    /// The linearisation of `σ` around `center` (Definition 4.2), returned as
    /// per-component `(slope, intercept)` pairs such that
    /// `Linearize[σ, center](x)_i = slope_i · x_i + intercept_i`.
    ///
    /// The linearisation is exact at its centre: `slope·center + intercept =
    /// σ(center)`.
    pub fn linearize(self, center: &[f64]) -> Vec<(f64, f64)> {
        center
            .iter()
            .map(|&c| {
                let slope = self.derivative_scalar(c);
                let intercept = self.apply_scalar(c) - slope * c;
                (slope, intercept)
            })
            .collect()
    }

    /// Whether the activation is piecewise linear (Definition 2.4).
    ///
    /// Polytope repair (Algorithm 2) requires every activation in the network
    /// to be PWL; point repair (Algorithm 1) does not.
    pub fn is_piecewise_linear(self) -> bool {
        !matches!(self, Activation::Tanh | Activation::Sigmoid)
    }

    /// Pre-activation thresholds at which the PWL activation changes slope,
    /// or `None` for smooth activations.
    ///
    /// These are the values the linear-region computation subdivides on.
    pub fn breakpoints(self) -> Option<Vec<f64>> {
        match self {
            Activation::Relu | Activation::LeakyRelu { .. } => Some(vec![0.0]),
            Activation::HardTanh => Some(vec![-1.0, 1.0]),
            Activation::Identity => Some(vec![]),
            Activation::Tanh | Activation::Sigmoid => None,
        }
    }

    /// A small integer identifying which linear piece `x` lies in, used to
    /// build activation patterns (Definition 2.5) for PWL activations.
    ///
    /// Smooth activations return 0 for every input.
    pub fn piece_index(self, x: f64) -> i8 {
        match self.breakpoints() {
            None => 0,
            Some(bps) => {
                let mut idx = 0i8;
                for b in bps {
                    if x >= b {
                        idx += 1;
                    }
                }
                idx
            }
        }
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Activation::Relu => write!(f, "relu"),
            Activation::LeakyRelu { alpha } => write!(f, "leaky_relu({alpha})"),
            Activation::HardTanh => write!(f, "hard_tanh"),
            Activation::Tanh => write!(f, "tanh"),
            Activation::Sigmoid => write!(f, "sigmoid"),
            Activation::Identity => write!(f, "identity"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 6] = [
        Activation::Relu,
        Activation::LeakyRelu { alpha: 0.1 },
        Activation::HardTanh,
        Activation::Tanh,
        Activation::Sigmoid,
        Activation::Identity,
    ];

    #[test]
    fn relu_basics() {
        let r = Activation::Relu;
        assert_eq!(r.apply(&[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 2.0]);
        assert_eq!(r.derivative(&[-1.0, 2.0]), vec![0.0, 1.0]);
    }

    #[test]
    fn leaky_and_hardtanh() {
        let l = Activation::LeakyRelu { alpha: 0.5 };
        assert_eq!(l.apply_scalar(-2.0), -1.0);
        assert_eq!(l.derivative_scalar(-2.0), 0.5);
        let h = Activation::HardTanh;
        assert_eq!(h.apply(&[-3.0, 0.5, 3.0]), vec![-1.0, 0.5, 1.0]);
        assert_eq!(h.derivative(&[-3.0, 0.5, 3.0]), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn linearization_exact_at_center() {
        for act in ALL {
            for &c in &[-2.0, -0.5, 0.0, 0.3, 1.7] {
                let lin = act.linearize(&[c]);
                let (slope, intercept) = lin[0];
                let recon = slope * c + intercept;
                assert!(
                    (recon - act.apply_scalar(c)).abs() < 1e-12,
                    "{act} at {c}: {recon} vs {}",
                    act.apply_scalar(c)
                );
            }
        }
    }

    #[test]
    fn derivative_matches_finite_difference_for_smooth() {
        let h = 1e-6;
        for act in [Activation::Tanh, Activation::Sigmoid] {
            for &x in &[-2.0, -0.3, 0.0, 0.7, 1.9] {
                let fd = (act.apply_scalar(x + h) - act.apply_scalar(x - h)) / (2.0 * h);
                assert!((fd - act.derivative_scalar(x)).abs() < 1e-5, "{act} at {x}");
            }
        }
    }

    #[test]
    fn pwl_classification() {
        assert!(Activation::Relu.is_piecewise_linear());
        assert!(Activation::HardTanh.is_piecewise_linear());
        assert!(!Activation::Tanh.is_piecewise_linear());
        assert!(!Activation::Sigmoid.is_piecewise_linear());
        assert_eq!(Activation::Relu.breakpoints(), Some(vec![0.0]));
        assert_eq!(Activation::Tanh.breakpoints(), None);
    }

    #[test]
    fn piece_index_partitions_the_line() {
        let h = Activation::HardTanh;
        assert_eq!(h.piece_index(-2.0), 0);
        assert_eq!(h.piece_index(0.0), 1);
        assert_eq!(h.piece_index(2.0), 2);
        let r = Activation::Relu;
        assert_eq!(r.piece_index(-0.1), 0);
        assert_eq!(r.piece_index(0.1), 1);
    }
}
