//! Property tests for the network JSON codec.
//!
//! This document format is the durable version log's on-disk record format
//! (`prdnn-serve`), so the round-trip guarantee must hold for **every**
//! [`Layer`] variant — dense, conv2d, max/avg pooling with arbitrary
//! windows — and every activation (including parametrised `LeakyRelu`),
//! not just the generator-registry networks the e2e tests exercise.  Three
//! properties are pinned:
//!
//! 1. serialise → parse reproduces every parameter **bit for bit**
//!    (`f64::to_bits` equality, which distinguishes `0.0` from `-0.0`);
//! 2. the serialised document text is **stable** across a round-trip
//!    (parse → serialise again yields the identical string), so records
//!    and snapshots can be compared as strings;
//! 3. the content hash is invariant under the round-trip.

use prdnn_linalg::Matrix;
use prdnn_nn::{
    network_content_hash, network_from_json, network_to_json, Activation, Conv2dLayer, Layer,
    Network, Pool2dLayer,
};
use proptest::prelude::*;
use proptest::strategy::Strategy;
use serde::json::Value;

/// Adversarial weight values: signed zeros, subnormals, values needing the
/// full 17 significant digits, and huge/tiny magnitudes.
fn tricky_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(5e-324), // smallest positive subnormal
        Just(-5e-324),
        Just(1.0 / 3.0), // needs 17 digits
        Just(0.1 + 0.2), // classic non-representable sum
        Just(f64::MIN_POSITIVE),
        Just(1.797_693_134_862_315_7e308),
        Just(-2.225_073_858_507_201_4e-308),
        -1e6..1e6f64,
        -1e-6..1e-6f64,
    ]
}

fn activation() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::Relu),
        Just(Activation::HardTanh),
        Just(Activation::Tanh),
        Just(Activation::Sigmoid),
        Just(Activation::Identity),
        tricky_f64().prop_map(|alpha| Activation::LeakyRelu { alpha }),
    ]
}

/// A dense-only stack with random widths and activations.
fn dense_network() -> impl Strategy<Value = Network> {
    (
        prop::collection::vec(1usize..5, 2..5),
        prop::collection::vec(activation(), 4),
        prop::collection::vec(tricky_f64(), 48),
    )
        .prop_map(|(widths, acts, vals)| {
            let mut it = vals.into_iter().cycle();
            let layers = widths
                .windows(2)
                .enumerate()
                .map(|(i, w)| {
                    let (inp, out) = (w[0], w[1]);
                    Layer::dense(
                        Matrix::from_flat(
                            out,
                            inp,
                            (0..out * inp).map(|_| it.next().unwrap()).collect(),
                        ),
                        (0..out).map(|_| it.next().unwrap()).collect(),
                        acts[i % acts.len()],
                    )
                })
                .collect();
            Network::new(layers)
        })
}

/// A conv → max-pool → avg-pool → dense chain: every `Layer` variant in
/// one network, with random image/kernel/window geometry.
fn conv_pool_network() -> impl Strategy<Value = Network> {
    (
        (1usize..3, 4usize..7, 4usize..7), // in channels, image height/width
        (1usize..3, 1usize..3, 0usize..2), // out channels, kernel, padding
        (
            activation(),
            activation(),
            prop::collection::vec(tricky_f64(), 64),
        ),
    )
        .prop_map(
            |((in_c, h, w), (out_c, k, pad), (act_conv, act_dense, vals))| {
                let mut it = vals.into_iter().cycle();
                let conv = Conv2dLayer {
                    in_channels: in_c,
                    in_height: h,
                    in_width: w,
                    out_channels: out_c,
                    kernel_h: k,
                    kernel_w: k,
                    stride: 1,
                    padding: pad,
                    weights: (0..out_c * in_c * k * k)
                        .map(|_| it.next().unwrap())
                        .collect(),
                    bias: (0..out_c).map(|_| it.next().unwrap()).collect(),
                    activation: act_conv,
                };
                let (ch, cw) = (conv.out_height(), conv.out_width());
                // Non-square pooling windows, stride possibly ≠ window.
                let max_pool = Pool2dLayer {
                    channels: out_c,
                    in_height: ch,
                    in_width: cw,
                    pool_h: 2.min(ch),
                    pool_w: 1,
                    stride: 1,
                };
                let (mh, mw) = (max_pool.out_height(), max_pool.out_width());
                let avg_pool = Pool2dLayer {
                    channels: out_c,
                    in_height: mh,
                    in_width: mw,
                    pool_h: 1,
                    pool_w: 2.min(mw),
                    stride: 1,
                };
                let flat = out_c * avg_pool.out_height() * avg_pool.out_width();
                let dense = Layer::dense(
                    Matrix::from_flat(2, flat, (0..2 * flat).map(|_| it.next().unwrap()).collect()),
                    vec![it.next().unwrap(), it.next().unwrap()],
                    act_dense,
                );
                Network::new(vec![
                    Layer::Conv2d(conv),
                    Layer::MaxPool2d(max_pool),
                    Layer::AvgPool2d(avg_pool),
                    dense,
                ])
            },
        )
}

fn network() -> impl Strategy<Value = Network> {
    prop_oneof![dense_network(), conv_pool_network()]
}

fn param_bits(net: &Network) -> Vec<u64> {
    net.params().iter().map(|p| p.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn round_trip_is_bit_exact_for_every_layer_variant(net in network()) {
        let doc = network_to_json(&net);
        let text = doc.to_json();
        let parsed = Value::parse(&text).unwrap();
        let back = network_from_json(&parsed).unwrap();

        // (1) Every parameter bit-identical (distinguishes 0.0 / -0.0).
        prop_assert_eq!(param_bits(&back), param_bits(&net));
        // Structure identical too (dims, activations, window geometry).
        prop_assert_eq!(back.num_layers(), net.num_layers());
        for i in 0..net.num_layers() {
            prop_assert_eq!(back.layer(i), net.layer(i), "layer {} differs", i);
        }

        // (2) The document text is a fixed point of the round-trip.
        prop_assert_eq!(network_to_json(&back).to_json(), text);

        // (3) The content hash is invariant.
        prop_assert_eq!(network_content_hash(&back), network_content_hash(&net));
    }

    #[test]
    fn single_flipped_mantissa_bit_changes_the_hash(net in network(), which in 0usize..4096) {
        let params = net.params();
        prop_assume!(!params.is_empty());
        let h = network_content_hash(&net);
        let i = which % params.len();
        let mut tweaked_params = params;
        tweaked_params[i] = f64::from_bits(tweaked_params[i].to_bits() ^ 1);
        let mut tweaked = net.clone();
        tweaked.set_params(&tweaked_params);
        prop_assert!(network_content_hash(&tweaked) != h, "hash unchanged after bit flip at {}", i);
    }
}
