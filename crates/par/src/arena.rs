//! A bump arena for per-phase scratch data.
//!
//! The SyReNN transformers churn through short-lived vertex/value rows —
//! allocated while a layer is being split, dead the moment the layer's
//! pieces are materialised.  A general-purpose allocator pays full price
//! for every one of those rows; this arena instead hands out ranges of one
//! growing buffer and frees them all at once with [`Arena::reset`], which
//! keeps the capacity for the next phase.  After the first few layers the
//! steady state is zero allocator traffic.
//!
//! Two deliberate restrictions keep it trivially sound:
//!
//! * Allocations are addressed by `(start, len)` ranges, not references,
//!   so holding an "allocation" borrows nothing — readers call
//!   [`Arena::slice`] when they need the data.  (`Vec` reallocation on
//!   growth moves the storage; ranges stay valid, raw pointers would not.)
//! * The only ways to free are [`Arena::reset`] (everything) and
//!   [`Arena::truncate`] (a suffix — used to roll back the allocation of a
//!   piece that turned out to be degenerate).  There is no per-range free
//!   and therefore no fragmentation or use-after-free to reason about.

/// A growable bump allocator over `Copy` elements.  See the module docs.
#[derive(Debug, Default)]
pub struct Arena<T> {
    data: Vec<T>,
}

impl<T: Copy> Arena<T> {
    /// An empty arena (no backing storage until the first push).
    pub fn new() -> Self {
        Arena { data: Vec::new() }
    }

    /// Current length — the `start` of whatever is pushed next.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the arena currently holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Frees everything, keeping the capacity for the next phase.
    pub fn reset(&mut self) {
        self.data.clear();
    }

    /// Rolls the arena back to `len` elements (a bulk un-push of the most
    /// recent allocations).
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current length — truncating *forward*
    /// would expose uninitialised storage.
    pub fn truncate(&mut self, len: usize) {
        assert!(len <= self.data.len(), "arena truncate beyond length");
        self.data.truncate(len);
    }

    /// Appends one element.
    #[inline]
    pub fn push(&mut self, value: T) {
        self.data.push(value);
    }

    /// Appends a slice, returning the start of the new range.
    pub fn extend_from_slice(&mut self, values: &[T]) -> usize {
        let start = self.data.len();
        self.data.extend_from_slice(values);
        start
    }

    /// Appends a copy of the arena's own `[start, start + len)` range —
    /// the arena-internal "clone this row" operation the piece splitters
    /// use in place of allocating a fresh `Vec` per vertex.
    pub fn extend_from_within(&mut self, start: usize, len: usize) {
        self.data.extend_from_within(start..start + len);
    }

    /// Reads a range previously handed out.
    #[inline]
    pub fn slice(&self, start: usize, len: usize) -> &[T] {
        &self.data[start..start + len]
    }
}

impl Arena<f64> {
    /// Appends `a + alpha * (b - a)` element-wise over two in-arena rows of
    /// length `len`, returning the start of the new range.
    ///
    /// This is the crossing-vertex interpolation of the SyReNN splitters,
    /// kept as the exact expression `x + alpha * (y - x)` so arena-carried
    /// values stay bit-identical to the `Vec`-based `lerp`.
    pub fn push_lerp(&mut self, a: usize, b: usize, len: usize, alpha: f64) -> usize {
        let start = self.data.len();
        self.data.reserve(len);
        for k in 0..len {
            let x = self.data[a + k];
            let y = self.data[b + k];
            self.data.push(x + alpha * (y - x));
        }
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_survive_growth_and_reset_keeps_capacity() {
        let mut arena: Arena<f64> = Arena::new();
        let a = arena.extend_from_slice(&[1.0, 2.0, 3.0]);
        // Force many growths; the range index stays valid throughout.
        for i in 0..10_000 {
            arena.push(i as f64);
        }
        assert_eq!(arena.slice(a, 3), &[1.0, 2.0, 3.0]);
        arena.reset();
        assert!(arena.is_empty());
        let b = arena.extend_from_slice(&[4.0]);
        assert_eq!(b, 0);
        assert_eq!(arena.slice(b, 1), &[4.0]);
    }

    #[test]
    fn extend_from_within_copies_rows() {
        let mut arena: Arena<f64> = Arena::new();
        let row = arena.extend_from_slice(&[1.0, 2.0]);
        arena.push(9.0);
        arena.extend_from_within(row, 2);
        assert_eq!(arena.slice(3, 2), &[1.0, 2.0]);
    }

    #[test]
    fn truncate_rolls_back_a_degenerate_allocation() {
        let mut arena: Arena<f64> = Arena::new();
        arena.extend_from_slice(&[1.0, 2.0]);
        let mark = arena.len();
        arena.extend_from_slice(&[5.0, 6.0, 7.0]);
        arena.truncate(mark);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn push_lerp_matches_elementwise_interpolation() {
        let mut arena: Arena<f64> = Arena::new();
        let a = arena.extend_from_slice(&[0.0, 2.0, -4.0]);
        let b = arena.extend_from_slice(&[1.0, 0.0, 4.0]);
        let out = arena.push_lerp(a, b, 3, 0.25);
        assert_eq!(arena.slice(out, 3), &[0.25, 1.5, -2.0]);
    }

    #[test]
    #[should_panic(expected = "beyond length")]
    fn truncate_forward_panics() {
        let mut arena: Arena<f64> = Arena::new();
        arena.push(1.0);
        arena.truncate(5);
    }
}
