//! A hand-rolled work-stealing thread pool for the PRDNN hot paths.
//!
//! The build environment has no registry access, so `rayon` is not an
//! option; this crate implements the small slice of it the workspace needs:
//! order-preserving [`ThreadPool::par_map`] / [`ThreadPool::par_chunks`]
//! built on `std::thread` workers with per-worker deques and chunked
//! stealing.
//!
//! Design:
//!
//! * Work is submitted one *job* at a time (one `par_map`/`par_chunks`
//!   call).  The job's items are split into contiguous chunks; each chunk
//!   becomes one task, so stealing moves whole chunks between workers and
//!   the order of results is fixed by chunk index, never by execution order
//!   — **parallel output is bit-identical to the serial path**.
//! * Every worker owns a lock-free Chase–Lev deque ([`deque`]): the owner
//!   pushes and pops at the bottom, idle workers CAS-steal from the top.
//!   Submitted jobs land in a small injector queue; the first worker to
//!   pick one up fans its chunk tasks onto its own deque, where the other
//!   workers steal them.
//! * Each chunk carries a claim flag, taken exactly once (atomic swap) by
//!   whoever runs it; a task popped after its chunk was already claimed is
//!   a no-op.  This is what lets the *submitting* thread help with its own
//!   job without touching any deque (see `run_job`).
//! * Panics inside the mapped closure are caught per chunk, the remaining
//!   chunks still run, and the first payload is re-raised on the calling
//!   thread ([`std::panic::resume_unwind`]), matching the serial behaviour
//!   as closely as possible.
//! * The submitting thread is not idle while its job runs: it pops and runs
//!   its own job's pending chunks and only sleeps on the completion condvar
//!   when every remaining chunk is already executing on a worker.  (It
//!   never runs *other* jobs' chunks — that could strand it in a long
//!   foreign chunk after its own job finished.)
//! * A pool of [`ThreadPool::new`]`(1)` spawns **no worker threads**: every
//!   call runs inline on the caller, giving a guaranteed serial fallback.
//! * Nested calls from inside a worker run inline (serially) on that
//!   worker, so `par_map` inside `par_map` cannot deadlock the pool.
//!
//! The pool used by the library hot paths is [`global`], sized by the
//! `PRDNN_THREADS` environment variable (falling back to
//! `std::thread::available_parallelism`).  Callers that want an explicit
//! thread count (e.g. `RepairConfig::threads`, which takes precedence over
//! `PRDNN_THREADS`) resolve a pool via [`pool_for`].

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

pub mod arena;
mod deque;

use deque::{ChaseLev, Steal};

/// How many chunks to deal per worker: more than one so that uneven chunk
/// costs can be rebalanced by stealing, but few enough that per-task
/// overhead stays negligible.
const CHUNKS_PER_WORKER: usize = 4;

thread_local! {
    /// Set while a pool worker is executing a task; nested parallel calls
    /// observe it and run inline instead of re-entering the pool.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// One submitted `par_map`/`par_chunks` call.
///
/// `run` type-erases the caller's chunk closure.  The pointee lives on the
/// calling thread's stack; erasing the lifetime is sound because the caller
/// blocks until `pending` reaches zero (even when unwinding), so every
/// execution of `run` happens while the closure and its borrows are alive.
struct JobCore {
    run: *const (dyn Fn(usize) + Sync),
    /// Total number of chunks dealt for this job.
    chunk_count: usize,
    /// Per-chunk claim flags: whoever swaps a flag to `true` runs that
    /// chunk; everyone else treats the chunk's task as a no-op.  This lets
    /// the submitter claim its own leftover chunks directly instead of
    /// hunting for them inside the workers' lock-free deques.
    claimed: Vec<AtomicBool>,
    pending: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `run` is only dereferenced while the submitting thread keeps the
// closure alive (see `JobCore` docs); the closure itself is `Sync`, and all
// other fields are synchronised.
unsafe impl Send for JobCore {}
unsafe impl Sync for JobCore {}

/// One chunk of one job.
struct Task {
    job: Arc<JobCore>,
    chunk: usize,
}

impl Task {
    /// Claims and runs the chunk; a no-op if someone (the submitter, or a
    /// duplicate task surviving in a deque) already claimed it.
    fn execute(self) {
        if !self.job.claimed[self.chunk].swap(true, Ordering::AcqRel) {
            run_chunk(&self.job, self.chunk);
        }
    }
}

/// Runs one *claimed* chunk of `job` and publishes its completion.
///
/// The claim must already be held by the caller: this is the only place
/// `job.run` is dereferenced, and a claim is handed out exactly once per
/// chunk, so `pending` reaches zero exactly when every chunk has run.
fn run_chunk(job: &JobCore, chunk: usize) {
    IN_WORKER.with(|f| f.set(true));
    // SAFETY: the submitting thread is blocked in `run_job`'s wait until
    // `pending` hits zero, which happens strictly after this call returns.
    let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe { (*job.run)(chunk) }));
    IN_WORKER.with(|f| f.set(false));
    if let Err(payload) = result {
        let mut slot = job.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
    if job.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut done = job.done.lock().unwrap();
        *done = true;
        job.done_cv.notify_all();
    }
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// One lock-free Chase–Lev deque per worker: the owner pushes/pops at
    /// the bottom, the other workers CAS-steal whole chunks from the top.
    deques: Vec<ChaseLev<Task>>,
    /// Freshly submitted jobs, awaiting fan-out by the first worker that
    /// sees them.  A plain mutexed queue is fine here: it is touched once
    /// per *job*, not once per chunk.
    injector: Mutex<VecDeque<Arc<JobCore>>>,
    /// Wakeup generation + shutdown flag, guarded together so workers can
    /// sleep without missing a submission.
    state: Mutex<WakeState>,
    cv: Condvar,
}

struct WakeState {
    generation: u64,
    shutdown: bool,
}

impl Shared {
    /// Wakes every sleeping worker (new work became visible).
    fn wake_workers(&self) {
        let mut state = self.state.lock().unwrap();
        state.generation += 1;
        self.cv.notify_all();
    }

    /// Finds a task for worker `who`: its own deque first, then the
    /// injector (fanning a fresh job's chunks onto its own deque for the
    /// siblings to steal), then a steal sweep over the other deques.
    fn find_task(&self, who: usize) -> Option<Task> {
        if let Some(task) = self.deques[who].pop() {
            return Some(task);
        }
        let job = self.injector.lock().unwrap().pop_front();
        if let Some(job) = job {
            // Fan the job out onto our own deque (we are its owner; only
            // owners may push).  Chunks the submitter has already claimed
            // would be popped as no-ops, so skip them here; the claim swap
            // in `Task::execute` makes a racy miss harmless.
            for chunk in 0..job.chunk_count {
                if !job.claimed[chunk].load(Ordering::Acquire) {
                    self.deques[who].push(Task {
                        job: Arc::clone(&job),
                        chunk,
                    });
                }
            }
            // The siblings can steal from our top now; wake them.
            self.wake_workers();
            if let Some(task) = self.deques[who].pop() {
                return Some(task);
            }
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (who + offset) % n;
            loop {
                match self.deques[victim].steal() {
                    Steal::Stolen(task) => return Some(task),
                    // Lost a race; the deque may still hold work.
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }
}

fn worker_loop(shared: Arc<Shared>, who: usize) {
    let mut last_seen = 0u64;
    loop {
        if let Some(task) = shared.find_task(who) {
            task.execute();
            continue;
        }
        let mut state = shared.state.lock().unwrap();
        if state.shutdown {
            return;
        }
        if state.generation == last_seen {
            state = shared.cv.wait(state).unwrap();
        }
        last_seen = state.generation;
        if state.shutdown {
            return;
        }
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the pool shuts the workers down and joins them.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Creates a pool with `threads`-way parallelism.
    ///
    /// `threads == 1` spawns no worker threads at all: every `par_map` /
    /// `par_chunks` call executes inline on the caller (the guaranteed
    /// serial fallback).  `threads == 0` is treated as 1.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let worker_count = if threads == 1 { 0 } else { threads };
        let shared = Arc::new(Shared {
            deques: (0..worker_count).map(|_| ChaseLev::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            state: Mutex::new(WakeState {
                generation: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..worker_count)
            .map(|who| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("prdnn-par-{who}"))
                    .spawn(move || worker_loop(shared, who))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// The pool's parallelism (the `threads` it was created with).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of spawned worker threads (0 for a serial pool).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Whether a call on this pool would take the serial inline path.
    fn is_serial_here(&self) -> bool {
        self.workers.is_empty() || IN_WORKER.with(|f| f.get())
    }

    /// Maps `f` over `items`, in parallel, preserving input order.
    ///
    /// The output is element-for-element identical to
    /// `items.into_iter().map(f).collect()` regardless of the thread count.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic raised by `f` (after every remaining chunk
    /// has run).
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        if self.is_serial_here() || items.len() < 2 {
            return items.into_iter().map(f).collect();
        }
        let n = items.len();
        let chunk_count = n.min(self.workers.len() * CHUNKS_PER_WORKER);
        // Deal the items into `chunk_count` contiguous chunks of near-equal
        // size (the first `n % chunk_count` chunks get one extra item).
        let base = n / chunk_count;
        let extra = n % chunk_count;
        let mut iter = items.into_iter();
        let inputs: Vec<Mutex<Option<Vec<T>>>> = (0..chunk_count)
            .map(|c| {
                let len = base + usize::from(c < extra);
                Mutex::new(Some(iter.by_ref().take(len).collect()))
            })
            .collect();
        let outputs: Vec<Mutex<Option<Vec<R>>>> =
            (0..chunk_count).map(|_| Mutex::new(None)).collect();

        let run = |chunk: usize| {
            let chunk_items = inputs[chunk]
                .lock()
                .unwrap()
                .take()
                .expect("chunk executed twice");
            let mapped: Vec<R> = chunk_items.into_iter().map(&f).collect();
            *outputs[chunk].lock().unwrap() = Some(mapped);
        };
        self.run_job(&run, chunk_count);

        outputs
            .into_iter()
            .flat_map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("chunk finished without output")
            })
            .collect()
    }

    /// Applies `f` to consecutive chunks of `items` of length `chunk_size`
    /// (the last chunk may be shorter), in parallel, returning the per-chunk
    /// results in order.
    ///
    /// Equivalent to `items.chunks(chunk_size).map(f).collect()`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`; re-raises the first panic raised by `f`.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        assert!(chunk_size > 0, "par_chunks: chunk_size must be positive");
        if self.is_serial_here() || items.len() <= chunk_size {
            return items.chunks(chunk_size).map(f).collect();
        }
        let chunk_count = items.len().div_ceil(chunk_size);
        let outputs: Vec<Mutex<Option<R>>> = (0..chunk_count).map(|_| Mutex::new(None)).collect();
        let run = |chunk: usize| {
            let start = chunk * chunk_size;
            let end = (start + chunk_size).min(items.len());
            *outputs[chunk].lock().unwrap() = Some(f(&items[start..end]));
        };
        self.run_job(&run, chunk_count);
        outputs
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("chunk finished without output")
            })
            .collect()
    }

    /// A chunk size that deals `items_len` items evenly across the pool
    /// (`CHUNKS_PER_WORKER` chunks per worker, minimum 1 item).
    ///
    /// On a serial pool this is the whole batch: chunking exists to feed
    /// the workers, and cutting a serial `par_chunks` call into sub-batches
    /// would only re-pay the per-batch setup the batched callers amortise.
    pub fn even_chunk_size(&self, items_len: usize) -> usize {
        if self.workers.is_empty() {
            return items_len.max(1);
        }
        items_len
            .div_ceil((self.threads * CHUNKS_PER_WORKER).max(1))
            .max(1)
    }

    /// Submits `chunk_count` tasks running `run` and blocks until all have
    /// finished, re-raising the first recorded panic.
    fn run_job(&self, run: &(dyn Fn(usize) + Sync), chunk_count: usize) {
        // SAFETY: lifetime erasure; this function does not return (or
        // unwind) before every task has executed, see `wait` below.
        let run: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                run as *const _,
            )
        };
        let job = Arc::new(JobCore {
            run,
            chunk_count,
            claimed: (0..chunk_count).map(|_| AtomicBool::new(false)).collect(),
            pending: AtomicUsize::new(chunk_count),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });

        // Publish the job: the first worker to pick it out of the injector
        // fans its chunks onto its own lock-free deque for the others to
        // steal (see `Shared::find_task`).
        self.shared
            .injector
            .lock()
            .unwrap()
            .push_back(Arc::clone(&job));
        self.shared.wake_workers();

        // The submitting thread *participates* while it waits: it sweeps
        // its own job's claim flags and runs every chunk the workers have
        // not already claimed.  It never touches the deques — stale tasks
        // for chunks claimed here execute as no-ops when popped — and it
        // never runs *other* jobs' chunks, which could strand it in a long
        // foreign chunk after its own job finished (latency-sensitive
        // callers — e.g. a serving batch worker sharing the pool with
        // repair workers — care).
        for chunk in 0..chunk_count {
            if !job.claimed[chunk].swap(true, Ordering::AcqRel) {
                run_chunk(&job, chunk);
            }
        }

        // Block until every chunk has run (some may still be in flight on
        // workers).  This wait is unconditional — the soundness of the
        // lifetime erasure above depends on it.  The flag is set under the
        // mutex, so the wakeup cannot be missed.
        let mut done = job.done.lock().unwrap();
        while !*done {
            done = job.done_cv.wait(done).unwrap();
        }
        drop(done);

        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            state.generation += 1;
            self.shared.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Parses a `PRDNN_THREADS` value: a positive integer, or a warning
/// message (naming the variable and the offending value) when it is not.
///
/// Split out of [`env_threads`] so the warning path is unit-testable
/// without capturing stderr.
fn parse_threads_value(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!(
            "warning: ignoring PRDNN_THREADS={raw:?}: \
             expected a positive integer; falling back to available parallelism"
        )),
    }
}

/// The thread count requested via the `PRDNN_THREADS` environment variable,
/// if set to a positive integer.
///
/// An unparsable value is ignored, but no longer silently: the first time
/// one is seen, a warning naming the variable and the value is printed to
/// stderr.
pub fn env_threads() -> Option<usize> {
    let raw = std::env::var("PRDNN_THREADS").ok()?;
    match parse_threads_value(&raw) {
        Ok(n) => Some(n),
        Err(warning) => {
            static WARNED: std::sync::Once = std::sync::Once::new();
            WARNED.call_once(|| eprintln!("{warning}"));
            None
        }
    }
}

/// The parallelism the global pool uses: `PRDNN_THREADS` if set, otherwise
/// `std::thread::available_parallelism`.
pub fn default_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool used by the library hot paths, created on first
/// use with [`default_threads`]-way parallelism.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(default_threads()))
}

/// A pool resolved from an optional explicit thread count: either the
/// global pool or a temporary one owned by the caller.
pub enum PoolRef {
    /// The process-wide [`global`] pool.
    Global(&'static ThreadPool),
    /// A pool created for this call because an explicit thread count
    /// differing from the global pool's was requested.
    Owned(Box<ThreadPool>),
}

impl std::ops::Deref for PoolRef {
    type Target = ThreadPool;

    fn deref(&self) -> &ThreadPool {
        match self {
            PoolRef::Global(pool) => pool,
            PoolRef::Owned(pool) => pool,
        }
    }
}

/// Resolves the pool for an optional explicit thread count.
///
/// Precedence: `explicit` (e.g. `RepairConfig::threads`) wins over the
/// `PRDNN_THREADS` environment variable, which wins over
/// `available_parallelism`.  When `explicit` is `None` or matches the
/// global pool's size, the global pool is reused; otherwise a fresh pool of
/// exactly `explicit` threads is created for the call.
pub fn pool_for(explicit: Option<usize>) -> PoolRef {
    let Some(n) = explicit else {
        return PoolRef::Global(global());
    };
    // Reuse the global pool only when the explicit count matches what it
    // has (or would be created with) — without forcing its workers into
    // existence just to compare sizes.
    let global_size = GLOBAL
        .get()
        .map_or_else(default_threads, ThreadPool::threads);
    if n == global_size {
        PoolRef::Global(global())
    } else {
        PoolRef::Owned(Box::new(ThreadPool::new(n)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn par_map_preserves_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(pool.par_map(items, |x| x * 3 + 1), expected);
    }

    #[test]
    fn par_map_empty_input() {
        let pool = ThreadPool::new(4);
        let out: Vec<i32> = pool.par_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
        let out: Vec<usize> = pool.par_chunks(&[] as &[i32], 8, |c| c.len());
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_pool_is_serial_and_spawns_no_workers() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.worker_count(), 0);
        assert_eq!(pool.threads(), 1);
        // Every item must run on the calling thread.
        let caller = thread::current().id();
        let ids = pool.par_map((0..64).collect::<Vec<_>>(), |_| thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.worker_count(), 0);
    }

    #[test]
    fn more_tasks_than_workers() {
        let pool = ThreadPool::new(2);
        // Far more items (and chunks) than workers.
        let items: Vec<u64> = (0..10_000).collect();
        let expected: u64 = items.iter().map(|x| x * x).sum();
        let mapped = pool.par_map(items, |x| x * x);
        assert_eq!(mapped.iter().sum::<u64>(), expected);
        assert_eq!(mapped.len(), 10_000);
    }

    #[test]
    fn panic_is_propagated() {
        let pool = ThreadPool::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map((0..100).collect::<Vec<i32>>(), |x| {
                if x == 37 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("boom at 37"));
        // The pool must still be usable afterwards.
        assert_eq!(pool.par_map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn panic_on_serial_pool_propagates_too() {
        let pool = ThreadPool::new(1);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_map(vec![0], |_| -> i32 { panic!("serial boom") })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn nested_par_map_runs_inline_without_deadlock() {
        let pool = ThreadPool::new(2);
        let nested_was_inline = AtomicBool::new(true);
        let out = pool.par_map((0..8).collect::<Vec<usize>>(), |i| {
            let outer_thread = thread::current().id();
            // Nested call: must run serially on the same worker thread.
            let inner = pool.par_map((0..8).collect::<Vec<usize>>(), |j| {
                if thread::current().id() != outer_thread {
                    nested_was_inline.store(false, Ordering::Relaxed);
                }
                i * 10 + j
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        for (i, sum) in out.iter().enumerate() {
            let expected: usize = (0..8).map(|j| i * 10 + j).sum();
            assert_eq!(*sum, expected);
        }
        assert!(
            nested_was_inline.load(Ordering::Relaxed),
            "nested par_map must not fan out to other workers"
        );
    }

    #[test]
    fn par_chunks_matches_serial_chunking() {
        let pool = ThreadPool::new(3);
        let items: Vec<i64> = (0..997).collect();
        for chunk_size in [1, 7, 100, 997, 2000] {
            let expected: Vec<i64> = items.chunks(chunk_size).map(|c| c.iter().sum()).collect();
            let got = pool.par_chunks(&items, chunk_size, |c| c.iter().sum::<i64>());
            assert_eq!(got, expected, "chunk_size {chunk_size}");
        }
    }

    #[test]
    fn caller_participates_while_waiting() {
        // Block every pool worker *and* a separate submitting thread inside
        // one job, then submit a second job from this thread: with all
        // workers pinned, the second job can only make progress if the
        // submitting thread runs its own chunks instead of sleeping on the
        // condvar (under the old sleep-only wait this test deadlocks).
        let pool = Arc::new(ThreadPool::new(2));
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let started = Arc::new(AtomicUsize::new(0));
        let blocker = {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            let started = Arc::clone(&started);
            thread::spawn(move || {
                // Three chunks: two workers plus the submitting thread
                // itself (helping) each take one and block on the barrier.
                pool.par_map(vec![0, 1, 2], |x| {
                    started.fetch_add(1, Ordering::SeqCst);
                    barrier.wait();
                    x
                })
            })
        };
        // Wait until all three blocking chunks are running, i.e. both
        // workers and the blocker thread are pinned inside the barrier.
        while started.load(Ordering::SeqCst) < 3 {
            thread::yield_now();
        }
        let caller = thread::current().id();
        let ids = pool.par_map((0..16).collect::<Vec<_>>(), |_| thread::current().id());
        assert!(
            ids.iter().all(|&id| id == caller),
            "with all workers blocked, every chunk must run on the caller"
        );
        // Release the blocked job and make sure the pool is healthy.
        barrier.wait();
        assert_eq!(blocker.join().unwrap(), vec![0, 1, 2]);
        assert_eq!(pool.par_map(vec![1, 2], |x| x * 2), vec![2, 4]);
    }

    #[test]
    fn concurrent_jobs_from_multiple_threads() {
        let pool = Arc::new(ThreadPool::new(4));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    let items: Vec<usize> = (0..500).collect();
                    let out = pool.par_map(items, |x| x + t);
                    assert_eq!(out.len(), 500);
                    assert_eq!(out[499], 499 + t);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn unparsable_thread_counts_warn_and_fall_back() {
        assert_eq!(parse_threads_value("4"), Ok(4));
        assert_eq!(parse_threads_value(" 2 "), Ok(2));
        for bad in ["", "zero", "-1", "0", "4.5", "1e3"] {
            let warning = parse_threads_value(bad).expect_err(bad);
            assert!(warning.contains("PRDNN_THREADS"), "{warning}");
            assert!(warning.contains(bad), "{warning}");
        }
    }

    #[test]
    fn env_and_pool_resolution() {
        // `pool_for(None)` and a matching explicit count both reuse the
        // global pool; a different explicit count gets its own pool.
        let global_threads = global().threads();
        assert!(matches!(pool_for(None), PoolRef::Global(_)));
        assert!(matches!(pool_for(Some(global_threads)), PoolRef::Global(_)));
        let other = pool_for(Some(global_threads + 1));
        assert!(matches!(other, PoolRef::Owned(_)));
        assert_eq!(other.threads(), global_threads + 1);
    }

    #[test]
    fn even_chunk_size_covers_all_items() {
        let pool = ThreadPool::new(4);
        for n in [0usize, 1, 5, 16, 1000] {
            let cs = pool.even_chunk_size(n);
            assert!(cs >= 1);
            if n > 0 {
                assert!(cs * pool.threads() * CHUNKS_PER_WORKER >= n);
            }
        }
    }
}
