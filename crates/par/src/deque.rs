//! A lock-free Chase–Lev work-stealing deque.
//!
//! One thread — the *owner* — pushes and pops at the bottom; any other
//! thread may steal from the top with a CAS.  The implementation follows
//! the memory orderings of Lê, Pop, Cohen & Zappa Nardelli, *Correct and
//! Efficient Work-Stealing for Weak Memory Models* (PPoPP 2013), with two
//! simplifications that trade a little memory for a lot of unsafe-code
//! surface:
//!
//! * Slots hold `*mut T` in an `AtomicPtr`, so the racy pre-CAS slot read
//!   in `steal` is an ordinary atomic load of a pointer-sized value (no
//!   `MaybeUninit` byte copies).  A thief only dereferences the pointer
//!   after *winning* the `top` CAS, and `top` is monotonic, so each logical
//!   index — and therefore each boxed value — is handed to exactly one
//!   thread.
//! * When the circular buffer fills, the owner allocates a doubled buffer,
//!   copies the live slot pointers, and **retires** the old buffer instead
//!   of freeing it (a thief may still be reading a slot through the old
//!   buffer; the value it reads is the same pointer the copy preserved).
//!   Retired buffers are freed when the deque is dropped; because
//!   capacities double, their total size is bounded by the final buffer's.

use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Initial circular-buffer capacity (must be a power of two).
const INITIAL_CAP: usize = 64;

/// The result of a [`ChaseLev::steal`] attempt.
pub(crate) enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; the deque may still
    /// hold work — retry before moving on.
    Retry,
    /// Won an element from the top.
    Stolen(T),
}

struct Buffer<T> {
    mask: isize,
    slots: Box<[AtomicPtr<T>]>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> *mut Buffer<T> {
        debug_assert!(cap.is_power_of_two());
        Box::into_raw(Box::new(Buffer {
            mask: cap as isize - 1,
            slots: (0..cap)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }))
    }

    #[inline]
    fn slot(&self, index: isize) -> &AtomicPtr<T> {
        &self.slots[(index & self.mask) as usize]
    }

    #[inline]
    fn capacity(&self) -> isize {
        self.mask + 1
    }
}

/// The deque.  `push`/`pop` must only be called by the owning thread;
/// `steal` may be called from anywhere.
pub(crate) struct ChaseLev<T> {
    /// Next index to steal from (monotonically increasing).
    top: AtomicIsize,
    /// Next index the owner pushes to.
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer<T>>,
    /// Outgrown buffers, kept alive for in-flight thieves; freed on drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the deque hands each boxed `T` to exactly one thread (see the
// module docs); all shared state is atomics or a mutex.
unsafe impl<T: Send> Send for ChaseLev<T> {}
unsafe impl<T: Send> Sync for ChaseLev<T> {}

impl<T> ChaseLev<T> {
    pub fn new() -> Self {
        ChaseLev {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(INITIAL_CAP)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Owner-only: pushes `value` onto the bottom.
    pub fn push(&self, value: T) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: only the owner swaps `buffer`, and retired buffers
        // outlive the deque.
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.capacity() {
            buf = self.grow(t, b);
        }
        buf.slot(b)
            .store(Box::into_raw(Box::new(value)), Ordering::Relaxed);
        // Publish the slot before the new bottom becomes visible to
        // thieves.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops from the bottom (most recently pushed first).
    pub fn pop(&self) -> Option<T> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: as in `push`.
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        // Announce the pop *before* reading `top`: a concurrent thief
        // must either see the lowered bottom or lose the CAS race below.
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let ptr = buf.slot(b).load(Ordering::Relaxed);
        if t == b {
            // Last element: race any thief for index `t`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            // SAFETY: winning the CAS (monotonic `top`) claims index `t`
            // exclusively.
            return won.then(|| *unsafe { Box::from_raw(ptr) });
        }
        // SAFETY: `t < b`, so no thief can claim index `b` before the
        // owner's lowered bottom is visible (the SeqCst fence above pairs
        // with the fence in `steal`).
        Some(*unsafe { Box::from_raw(ptr) })
    }

    /// Steals from the top.  Any thread may call this.
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Read the candidate slot *before* the CAS; on CAS failure the
        // (possibly stale) value is discarded without being dereferenced.
        // SAFETY: `buffer` is never freed while the deque is alive
        // (outgrown buffers are retired, not dropped), so the load and the
        // slot read are always into live memory.
        let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
        let ptr = buf.slot(t).load(Ordering::Relaxed);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry;
        }
        // SAFETY: the CAS claimed index `t` exclusively, and a successful
        // CAS implies the slot held index `t`'s pointer when it was read:
        // the owner only reuses a physical slot after `top` has advanced
        // past it (a full buffer grows instead of wrapping onto live
        // slots), and `top` never moves backwards.
        Steal::Stolen(*unsafe { Box::from_raw(ptr) })
    }

    /// Owner-only: doubles the buffer, copying live slots `[t, b)`.
    fn grow(&self, t: isize, b: isize) -> &Buffer<T> {
        // SAFETY: as in `push`.
        let old = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        let new_ptr = Buffer::alloc(old.capacity() as usize * 2);
        // SAFETY: freshly allocated, exclusively owned until published.
        let new = unsafe { &*new_ptr };
        for i in t..b {
            new.slot(i)
                .store(old.slot(i).load(Ordering::Relaxed), Ordering::Relaxed);
        }
        let old_ptr = self.buffer.swap(new_ptr, Ordering::Release);
        self.retired.lock().unwrap().push(old_ptr);
        new
    }
}

impl<T> Drop for ChaseLev<T> {
    fn drop(&mut self) {
        // `&mut self`: no concurrent owners or thieves remain.
        while self.pop().is_some() {}
        // SAFETY: all buffers were created by `Buffer::alloc` and are no
        // longer reachable by any other thread.
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for ptr in self.retired.get_mut().unwrap().drain(..) {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn owner_pop_is_lifo_steal_is_fifo() {
        let d = ChaseLev::new();
        for i in 0..4 {
            d.push(i);
        }
        assert!(matches!(d.steal(), Steal::Stolen(0)));
        assert_eq!(d.pop(), Some(3));
        assert!(matches!(d.steal(), Steal::Stolen(1)));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert!(matches!(d.steal(), Steal::Empty));
    }

    #[test]
    fn grows_past_initial_capacity_without_losing_elements() {
        let d = ChaseLev::new();
        let n = INITIAL_CAP * 5 + 3;
        for i in 0..n {
            d.push(i);
        }
        // Steal a few from the top, pop the rest from the bottom.
        for expected in 0..7 {
            assert!(matches!(d.steal(), Steal::Stolen(x) if x == expected));
        }
        for expected in (7..n).rev() {
            assert_eq!(d.pop(), Some(expected));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn drop_frees_remaining_elements() {
        // Boxed values ensure a leak would be caught by sanitizers/miri;
        // under plain `cargo test` this at least exercises the drain path
        // across a grown buffer.
        let d = ChaseLev::new();
        for i in 0..INITIAL_CAP * 3 {
            d.push(vec![i; 4]);
        }
        drop(d);
    }

    #[test]
    fn concurrent_thieves_conserve_the_multiset() {
        // One owner pushes (and occasionally pops); three thieves steal.
        // Every element must be consumed exactly once.
        const PER_ROUND: usize = 1000;
        const ROUNDS: usize = 20;
        let d = Arc::new(ChaseLev::new());
        let consumed = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

        let thieves: Vec<_> = (0..3)
            .map(|_| {
                let d = Arc::clone(&d);
                let consumed = Arc::clone(&consumed);
                let sum = Arc::clone(&sum);
                let done = Arc::clone(&done);
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Stolen(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        let mut expected_sum = 0usize;
        let mut produced = 0usize;
        for round in 0..ROUNDS {
            for i in 0..PER_ROUND {
                let v = round * PER_ROUND + i;
                expected_sum += v;
                produced += 1;
                d.push(v);
            }
            // The owner competes with the thieves for its own work.
            while let Some(v) = d.pop() {
                sum.fetch_add(v, Ordering::Relaxed);
                consumed.fetch_add(1, Ordering::Relaxed);
            }
        }
        done.store(true, Ordering::Release);
        for handle in thieves {
            handle.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert_eq!(sum.load(Ordering::Relaxed), expected_sum);
    }
}
