//! Quickstart: the paper's running example (§3, Figures 3–5) end to end.
//!
//! Builds the tiny ReLU network `N1`, shows that it violates the point
//! specification of Equation 2 and the polytope specification of Equation 3,
//! repairs it with both algorithms, and prints the resulting input–output
//! behaviour.
//!
//! Run with: `cargo run --example quickstart`

use prdnn::core::{paper_example, repair_points, repair_polytopes, RepairConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- The buggy network N1 (Figure 3a). -------------------------------
    let n1 = paper_example::n1();
    println!(
        "N1(0.5) = {:+.3}   N1(1.5) = {:+.3}",
        n1.forward(&[0.5])[0],
        n1.forward(&[1.5])[0]
    );

    // ---- Provable Point Repair against Equation 2. ------------------------
    // (-1 <= N'(0.5) <= -0.8)  and  (-0.2 <= N'(1.5) <= 0)
    let spec = paper_example::equation_2_spec();
    println!(
        "\nEquation 2 satisfied by N1? {}",
        spec.is_satisfied_by(|x| n1.forward(x), 1e-9)
    );
    let point_repair = repair_points(&n1, 0, &spec, &RepairConfig::default())?;
    println!(
        "point repair of layer 1: delta_l1 = {:.3}, delta_linf = {:.3}",
        point_repair.stats.delta_l1, point_repair.stats.delta_linf
    );
    let n5 = &point_repair.repaired;
    println!(
        "N5(0.5) = {:+.3}   N5(1.5) = {:+.3}",
        n5.forward(&[0.5])[0],
        n5.forward(&[1.5])[0]
    );
    assert!(spec.is_satisfied_by(|x| n5.forward(x), 1e-6));

    // ---- Provable Polytope Repair against Equation 3. ----------------------
    // For every x in [0.5, 1.5]:  -0.8 <= N'(x) <= -0.4
    let polytope_spec = paper_example::equation_3_spec();
    let polytope_repair = repair_polytopes(&n1, 0, &polytope_spec, &RepairConfig::default())?;
    println!(
        "\npolytope repair: {} linear regions, {} key points, delta_l1 = {:.3}",
        polytope_repair.num_regions,
        polytope_repair.num_key_points,
        polytope_repair.outcome.stats.delta_l1
    );
    let n6 = &polytope_repair.outcome.repaired;
    print!("N6 on [0.5, 1.5]: ");
    for i in 0..=5 {
        let x = 0.5 + i as f64 / 5.0;
        print!("{:+.2} ", n6.forward(&[x])[0]);
    }
    println!("\n(every value is guaranteed to lie in [-0.8, -0.4])");
    Ok(())
}
