//! Pointwise image-classifier repair (a small version of Task 1, §7.1).
//!
//! Trains a small CNN on synthetic object images, collects distorted
//! "natural adversarial" images it misclassifies, and repairs each layer in
//! turn to make every one of them correctly classified — then reports the
//! drawdown of each choice of repair layer, reproducing the shape of
//! Figure 7(a).
//!
//! Run with: `cargo run --release --example pointwise_image_repair`

use prdnn::core::{repair_points, PointSpec, RepairConfig, RepairError};
use prdnn::datasets::{imagenet_like, natural_adversarial};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = imagenet_like::object_task(11, 270, 135);
    let network = task.network;
    println!(
        "buggy CNN: {:.1}% accuracy on clean validation images",
        100.0 * task.validation.accuracy(&network)
    );

    // Collect misclassified distorted images (the repair set).
    let mut rng = StdRng::seed_from_u64(5);
    let repair_set = natural_adversarial::misclassified_pool(&network, 8, 4000, &mut rng);
    println!(
        "repair set: {} misclassified distorted images",
        repair_set.len()
    );
    let spec = PointSpec::from_classification(
        &repair_set.inputs,
        &repair_set.labels,
        imagenet_like::NUM_CLASSES,
        1e-4,
    );

    // Repair each layer in turn and report drawdown, as in Figure 7(a).
    println!("\nlayer | result      | drawdown on clean validation set");
    for layer in network.repairable_layers() {
        match repair_points(&network, layer, &spec, &RepairConfig::default()) {
            Ok(outcome) => {
                let repaired_acc = task
                    .validation
                    .inputs
                    .iter()
                    .zip(&task.validation.labels)
                    .filter(|(x, &y)| outcome.repaired.classify(x) == y)
                    .count() as f64
                    / task.validation.len() as f64;
                let drawdown = task.validation.accuracy(&network) - repaired_acc;
                println!("{layer:>5} | repaired    | {:+.1}%", 100.0 * drawdown);
                // Efficacy is guaranteed: every repair point is now correct.
                for (x, &y) in repair_set.inputs.iter().zip(&repair_set.labels) {
                    assert_eq!(outcome.repaired.classify(x), y);
                }
            }
            Err(RepairError::Infeasible) => println!("{layer:>5} | infeasible  | -"),
            Err(e) => println!("{layer:>5} | error: {e} | -"),
        }
    }
    println!("\n(the paper's Figure 7a shows the same trend: later layers repair with far less drawdown)");
    Ok(())
}
