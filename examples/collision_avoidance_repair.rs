//! Collision-avoidance safety repair (a small version of Task 3, §7.3).
//!
//! Distils a collision-avoidance policy into an MLP, finds 2-D input slices
//! on which the network violates a φ8-like safety property ("when the
//! intruder is distant and well behind, advise clear-of-conflict or weak
//! left"), and applies Provable Polytope Repair so the property holds on
//! every point of those slices.
//!
//! Run with: `cargo run --release --example collision_avoidance_repair`

use prdnn::core::{repair_polytopes, InputPolytope, OutputPolytope, PolytopeSpec, RepairConfig};
use prdnn::datasets::acas;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = acas::acas_task(33, 1200);
    let network = task.network;
    println!(
        "distilled network imitates the teacher policy with {:.1}% accuracy",
        100.0 * task.train.accuracy(&network)
    );

    // Search candidate 2-D slices of the φ8 region for violations.
    let mut rng = StdRng::seed_from_u64(8);
    let candidates = acas::random_phi8_slices(40, &mut rng);
    let grid = 5;
    let violating: Vec<_> = candidates
        .into_iter()
        .filter(|s| {
            s.grid(grid)
                .iter()
                .any(|p| !acas::phi8_allows(network.classify(p)))
        })
        .collect();
    println!(
        "found {} violating slices; repairing the first 2",
        violating.len()
    );
    if violating.len() < 2 {
        println!("the distilled network happens to satisfy the property here; nothing to repair");
        return Ok(());
    }

    // Strengthen the disjunctive property per slice (as the paper does) and
    // build the polytope specification.
    let mut spec = PolytopeSpec::new();
    for slice in violating.iter().take(2) {
        let mut coc = 0.0;
        let mut weak_left = 0.0;
        for p in slice.grid(grid) {
            let out = network.forward(&p);
            coc += out[acas::Advisory::ClearOfConflict as usize];
            weak_left += out[acas::Advisory::WeakLeft as usize];
        }
        let target = if coc >= weak_left {
            acas::Advisory::ClearOfConflict as usize
        } else {
            acas::Advisory::WeakLeft as usize
        };
        spec.push(
            InputPolytope::polygon(slice.corners()),
            OutputPolytope::classification(target, acas::NUM_ADVISORIES, 1e-4),
        );
    }

    // Repair the final layer.
    let last = network.num_layers() - 1;
    let result = repair_polytopes(&network, last, &spec, &RepairConfig::default())?;
    println!(
        "repaired: {} linear regions, {} key points, delta_l1 = {:.4}",
        result.num_regions, result.num_key_points, result.outcome.stats.delta_l1
    );

    // Verify the property now holds on a dense grid of the repaired slices.
    let repaired = &result.outcome.repaired;
    let mut violations = 0;
    let mut total = 0;
    for slice in violating.iter().take(2) {
        for p in slice.grid(grid * 3) {
            total += 1;
            if !acas::phi8_allows(repaired.classify(&p)) {
                violations += 1;
            }
        }
    }
    println!("violations remaining on the repaired slices: {violations}/{total} (guaranteed 0)");

    // And check we did not disturb ordinary behaviour elsewhere.
    let mut agree = 0;
    let samples = 500;
    for _ in 0..samples {
        let state = acas::sample_state(&mut rng);
        let x = state.normalize();
        if repaired.classify(&x) == network.classify(&x) {
            agree += 1;
        }
    }
    println!(
        "repaired network agrees with the original on {:.1}% of random encounter states",
        100.0 * agree as f64 / samples as f64
    );
    Ok(())
}
