//! Fog-line repair (a small version of Task 2, §7.2).
//!
//! Trains a digit classifier, picks a few images whose fog-corrupted copies
//! are misclassified, and uses Provable Polytope Repair so that *every*
//! image along each clean→foggy interpolation line is classified correctly.
//! Compares drawdown and generalization against plain fine-tuning.
//!
//! Run with: `cargo run --release --example fog_line_repair`

use prdnn::baselines::{fine_tune, FineTuneConfig};
use prdnn::core::{repair_polytopes, InputPolytope, OutputPolytope, PolytopeSpec, RepairConfig};
use prdnn::datasets::{corruptions, digits};
use prdnn::nn::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A trained (but "buggy") digit classifier.
    let task = digits::digit_task(7, 300, 150);
    let network = task.network;
    let fog_alpha = 0.55;
    let fog = |x: &[f64]| corruptions::fog(x, digits::SIDE, digits::SIDE, fog_alpha);

    // Clean accuracy vs foggy accuracy: the "bug" we want to repair.
    let foggy_test = Dataset::new(
        task.test.inputs.iter().map(|x| fog(x)).collect(),
        task.test.labels.clone(),
    );
    println!(
        "buggy network: {:.1}% on clean test images, {:.1}% on foggy test images",
        100.0 * task.test.accuracy(&network),
        100.0 * foggy_test.accuracy(&network)
    );

    // Repair specification: four clean→foggy lines whose foggy endpoint is
    // misclassified.
    let mut lines: Vec<(Vec<f64>, Vec<f64>, usize)> = Vec::new();
    for (x, &label) in task.train.inputs.iter().zip(&task.train.labels) {
        let foggy = fog(x);
        if network.classify(&foggy) != label && network.classify(x) == label {
            lines.push((x.clone(), foggy, label));
            if lines.len() == 4 {
                break;
            }
        }
    }
    let mut spec = PolytopeSpec::new();
    for (clean, foggy, label) in &lines {
        spec.push(
            InputPolytope::segment(clean.clone(), foggy.clone()),
            OutputPolytope::classification(*label, digits::NUM_CLASSES, 1e-4),
        );
    }
    println!(
        "repairing {} clean→foggy lines (infinitely many points each)",
        lines.len()
    );

    // Provable Polytope Repair of the last layer.
    let result = repair_polytopes(&network, 2, &spec, &RepairConfig::default())?;
    let repaired = &result.outcome.repaired;
    println!(
        "provable repair: {} key points, delta_l1 = {:.3}, time = {:.2?}",
        result.num_key_points,
        result.outcome.stats.delta_l1,
        result.outcome.stats.timing.total()
    );
    let repaired_clean = task
        .test
        .inputs
        .iter()
        .zip(&task.test.labels)
        .filter(|(x, &y)| repaired.classify(x) == y)
        .count() as f64
        / task.test.len() as f64;
    let repaired_foggy = foggy_test
        .inputs
        .iter()
        .zip(&foggy_test.labels)
        .filter(|(x, &y)| repaired.classify(x) == y)
        .count() as f64
        / foggy_test.len() as f64;
    println!(
        "after repair: {:.1}% on clean test images (drawdown {:+.1}%), {:.1}% on foggy test \
         images (generalization {:+.1}%)",
        100.0 * repaired_clean,
        100.0 * (task.test.accuracy(&network) - repaired_clean),
        100.0 * repaired_foggy,
        100.0 * (repaired_foggy - foggy_test.accuracy(&network)),
    );

    // Fine-tuning baseline on sampled points from the same lines.
    let mut rng = StdRng::seed_from_u64(42);
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for (clean, foggy, label) in &lines {
        let segment = InputPolytope::segment(clean.clone(), foggy.clone());
        for p in segment.sample(10, &mut rng) {
            inputs.push(p);
            labels.push(*label);
        }
    }
    let ft_set = Dataset::new(inputs, labels);
    let ft = fine_tune(
        &network,
        &ft_set,
        &FineTuneConfig {
            learning_rate: 0.05,
            max_epochs: 50,
            ..Default::default()
        },
        &mut rng,
    );
    println!(
        "fine-tuning baseline: {:.1}% on clean test images (drawdown {:+.1}%), no guarantee on \
         the un-sampled line points",
        100.0 * task.test.accuracy(&ft.network),
        100.0 * (task.test.accuracy(&network) - task.test.accuracy(&ft.network)),
    );
    Ok(())
}
