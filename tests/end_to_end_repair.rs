//! Cross-crate integration tests: the full repair pipeline over the facade
//! crate, from dataset generation through training, linear regions, and the
//! LP, to a verified repaired network.

use prdnn::core::{
    repair_points, repair_polytopes, DecoupledNetwork, InputPolytope, LpBackend, OutputPolytope,
    PointSpec, PolytopeSpec, PricingRule, RepairConfig, RepairError, RepairNorm,
};
use prdnn::datasets::{acas, corruptions, digits, imagenet_like, natural_adversarial};
use prdnn::nn::{Activation, Network};
use prdnn::syrenn;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Golden end-to-end repair fixture: the paper's running example (repair
/// `N1`'s layer 0 against Equation 2) must produce *identical* results —
/// success, norm of the parameter delta, and drawdown away from the repair
/// points — under every backend × pricing × thread-count combination, so a
/// pricing or factorisation change can never silently alter a repair.
///
/// Golden values measured from the dense oracle: the ℓ1-minimal *objective*
/// `‖Δ‖₁ = 31/30` is unique, so it is pinned exactly; the optimal *vertex*
/// is not necessarily unique, so `‖Δ‖∞` and the drawdown are pinned as
/// upper bounds (`11/15` and `7/6`, the values every current configuration
/// attains).
#[test]
fn golden_paper_example_repair_is_invariant_across_configurations() {
    const GOLDEN_DELTA_L1: f64 = 31.0 / 30.0;
    const GOLDEN_DELTA_LINF: f64 = 11.0 / 15.0;
    const GOLDEN_DRAWDOWN: f64 = 7.0 / 6.0;
    let n1 = prdnn::core::paper_example::n1();
    let spec = prdnn::core::paper_example::equation_2_spec();
    for backend in [LpBackend::DenseTableau, LpBackend::RevisedSparse] {
        for pricing in [PricingRule::Dantzig, PricingRule::Devex] {
            for threads in [1usize, 4] {
                let label = format!("{backend:?}/{pricing:?}/threads={threads}");
                let config = RepairConfig {
                    lp_backend: backend,
                    lp_pricing: pricing,
                    threads: Some(threads),
                    ..RepairConfig::default()
                };
                let outcome = repair_points(&n1, 0, &spec, &config)
                    .unwrap_or_else(|e| panic!("{label}: repair failed: {e}"));
                // Success: the specification holds on the repaired network.
                assert!(
                    spec.is_satisfied_by(|x| outcome.repaired.forward(x), 1e-7),
                    "{label}: repaired network violates Equation 2"
                );
                // Parameter-delta norms are pinned to the golden optimum.
                assert!(
                    (outcome.stats.delta_l1 - GOLDEN_DELTA_L1).abs() < 1e-6,
                    "{label}: delta l1 {} != golden {GOLDEN_DELTA_L1}",
                    outcome.stats.delta_l1
                );
                assert!(
                    outcome.stats.delta_linf <= GOLDEN_DELTA_LINF + 1e-6,
                    "{label}: delta linf {} exceeds golden bound {GOLDEN_DELTA_LINF}",
                    outcome.stats.delta_linf
                );
                // Drawdown: the repair moves no point of the domain by more
                // than the golden bound.
                let mut drawdown = 0.0f64;
                for i in 0..=300 {
                    let x = -1.0 + 3.0 * i as f64 / 300.0;
                    let moved = (outcome.repaired.forward(&[x])[0] - n1.forward(&[x])[0]).abs();
                    drawdown = drawdown.max(moved);
                }
                assert!(
                    drawdown <= GOLDEN_DRAWDOWN + 1e-6,
                    "{label}: drawdown {drawdown} exceeds golden {GOLDEN_DRAWDOWN}"
                );
            }
        }
    }
}

#[test]
fn pointwise_repair_of_a_trained_digit_classifier() {
    // Train, find misclassified test digits, repair the last layer.
    let task = digits::digit_task(3, 250, 120);
    let misclassified = task.test.misclassified(&task.network).take(6);
    assert!(
        !misclassified.is_empty(),
        "the small classifier should make some mistakes"
    );
    let spec = PointSpec::from_classification(
        &misclassified.inputs,
        &misclassified.labels,
        digits::NUM_CLASSES,
        1e-4,
    );
    let outcome = repair_points(&task.network, 2, &spec, &RepairConfig::default())
        .expect("last-layer repair must be feasible");
    // Efficacy is 100% (the paper's guarantee).
    for (x, &y) in misclassified.inputs.iter().zip(&misclassified.labels) {
        assert_eq!(outcome.repaired.classify(x), y);
    }
    // Drawdown stays bounded: the repaired network keeps most of its clean
    // accuracy.
    let before = task.test.accuracy(&task.network);
    let after = task
        .test
        .inputs
        .iter()
        .zip(&task.test.labels)
        .filter(|(x, &y)| outcome.repaired.classify(x) == y)
        .count() as f64
        / task.test.len() as f64;
    assert!(
        before - after < 0.3,
        "drawdown too large: {before} -> {after}"
    );
}

#[test]
fn polytope_repair_guarantees_every_point_of_a_fog_line() {
    let task = digits::digit_task(5, 200, 80);
    // Find a clean/foggy pair where the foggy endpoint is misclassified.
    let mut line = None;
    for (x, &y) in task.train.inputs.iter().zip(&task.train.labels) {
        let foggy = corruptions::fog(x, digits::SIDE, digits::SIDE, 0.6);
        if task.network.classify(x) == y && task.network.classify(&foggy) != y {
            line = Some((x.clone(), foggy, y));
            break;
        }
    }
    let (clean, foggy, label) = line.expect("fog must break at least one training image");
    let mut spec = PolytopeSpec::new();
    spec.push(
        InputPolytope::segment(clean.clone(), foggy.clone()),
        OutputPolytope::classification(label, digits::NUM_CLASSES, 1e-4),
    );
    let result = repair_polytopes(&task.network, 2, &spec, &RepairConfig::default())
        .expect("repair must be feasible");
    // The number of key points equals twice the number of linear regions for
    // a 1-D line (each region contributes its two endpoints).
    assert_eq!(result.num_key_points, 2 * result.num_regions);
    // Provable guarantee: *every* interpolation point is classified correctly.
    for i in 0..=300 {
        let t = i as f64 / 300.0;
        let p: Vec<f64> = clean
            .iter()
            .zip(&foggy)
            .map(|(c, f)| c + t * (f - c))
            .collect();
        assert_eq!(
            result.outcome.repaired.classify(&p),
            label,
            "violated at t = {t}"
        );
    }
}

#[test]
fn repair_is_minimal_with_respect_to_the_chosen_norm() {
    // A repair with a loose specification should be no larger than the same
    // repair with a tighter one, and the l1-minimal delta is never smaller
    // than the linf-minimal delta measured in linf.
    let n1 = prdnn::core::paper_example::n1();
    let loose = {
        let mut s = PointSpec::new();
        s.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.6));
        s
    };
    let tight = {
        let mut s = PointSpec::new();
        s.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.9));
        s
    };
    let config = RepairConfig::default();
    let loose_outcome = repair_points(&n1, 0, &loose, &config).unwrap();
    let tight_outcome = repair_points(&n1, 0, &tight, &config).unwrap();
    assert!(loose_outcome.stats.delta_l1 <= tight_outcome.stats.delta_l1 + 1e-9);
    // N1(0.5) = -0.5 and the output decreases by exactly (0.5·Δw2 + Δb2) at
    // x = 0.5, so pushing it to -0.6 needs an l1-minimal change of 0.1
    // (all on the h2 bias) and pushing it to -0.9 needs 0.4.
    assert!((loose_outcome.stats.delta_l1 - 0.1).abs() < 1e-6);
    assert!((tight_outcome.stats.delta_l1 - 0.4).abs() < 1e-6);

    let linf_outcome = repair_points(
        &n1,
        0,
        &tight,
        &RepairConfig {
            norm: RepairNorm::LInf,
            ..RepairConfig::default()
        },
    )
    .unwrap();
    assert!(linf_outcome.stats.delta_linf <= tight_outcome.stats.delta_linf + 1e-9);
}

#[test]
fn cnn_layers_can_be_repaired_including_convolutions() {
    let task = imagenet_like::object_task(17, 180, 90);
    let mut rng = StdRng::seed_from_u64(2);
    let pool = natural_adversarial::misclassified_pool(&task.network, 3, 3000, &mut rng);
    assert!(!pool.is_empty());
    let spec = PointSpec::from_classification(
        &pool.inputs,
        &pool.labels,
        imagenet_like::NUM_CLASSES,
        1e-4,
    );
    // Repair the *first convolutional layer* — exercising the conv parameter
    // Jacobian path — and the last dense layer.
    for layer in [0usize, 5usize] {
        match repair_points(&task.network, layer, &spec, &RepairConfig::default()) {
            Ok(outcome) => {
                for (x, &y) in pool.inputs.iter().zip(&pool.labels) {
                    assert_eq!(
                        outcome.repaired.classify(x),
                        y,
                        "layer {layer} repair not exact"
                    );
                }
            }
            Err(RepairError::Infeasible) => {
                // Permitted by the algorithm (the paper also reports some
                // layers as unrepairable), but the last layer should succeed.
                assert_ne!(layer, 5, "last-layer repair should be feasible");
            }
            Err(e) => panic!("unexpected repair error: {e}"),
        }
    }
}

#[test]
fn acas_style_plane_repair_respects_linear_regions() {
    let task = acas::acas_task(41, 900);
    let mut rng = StdRng::seed_from_u64(4);
    let slices = acas::random_phi8_slices(10, &mut rng);
    let slice = &slices[0];
    // LinRegions of the slice: every region is affine, and its vertices lie
    // inside (or on the boundary of) the slice rectangle.
    let regions = syrenn::plane_regions(&task.network, &slice.corners()).unwrap();
    assert!(!regions.is_empty());
    let (lo, hi) = acas::phi8_region();
    for region in &regions {
        for v in &region.vertices {
            for d in 0..acas::STATE_DIM {
                assert!(v[d] >= lo[d] - 1e-6 && v[d] <= hi[d] + 1e-6);
            }
        }
    }
    // Repairing the last layer's value channel never changes those regions
    // (Theorem 4.6): activation patterns at region interiors are preserved.
    let mut spec = PolytopeSpec::new();
    spec.push(
        InputPolytope::polygon(slice.corners()),
        OutputPolytope::classification(acas::Advisory::ClearOfConflict as usize, 5, 1e-4),
    );
    let last = task.network.num_layers() - 1;
    if let Ok(result) = repair_polytopes(&task.network, last, &spec, &RepairConfig::default()) {
        for region in &regions {
            assert_eq!(
                result
                    .outcome
                    .repaired
                    .activation_network()
                    .activation_pattern(&region.interior),
                task.network.activation_pattern(&region.interior)
            );
        }
    }
}

#[test]
fn chained_repairs_compose_on_a_ddnn() {
    // Repair one specification, then repair the result against another; both
    // must hold at the end (the second repair re-encodes from the current
    // DDNN, so earlier guarantees are preserved only if re-asserted — check
    // the documented behaviour).
    let mut rng = StdRng::seed_from_u64(12);
    let net = Network::mlp(&[3, 12, 8, 3], Activation::Relu, &mut rng);
    let ddnn = DecoupledNetwork::from_network(&net);
    let spec1 = PointSpec::from_classification(&[vec![0.2, -0.4, 0.6]], &[1], 3, 1e-4);
    let first = prdnn::core::repair_points_ddnn(&ddnn, 2, &spec1, &RepairConfig::default())
        .expect("first repair");
    // Second repair asserts both the old and a new point so both hold.
    let mut spec2 = PointSpec::from_classification(&[vec![0.2, -0.4, 0.6]], &[1], 3, 1e-4);
    spec2.push(
        vec![-0.5, 0.3, 0.1],
        OutputPolytope::classification(2, 3, 1e-4),
    );
    let second =
        prdnn::core::repair_points_ddnn(&first.repaired, 2, &spec2, &RepairConfig::default())
            .expect("second repair");
    assert_eq!(second.repaired.classify(&[0.2, -0.4, 0.6]), 1);
    assert_eq!(second.repaired.classify(&[-0.5, 0.3, 0.1]), 2);
}
