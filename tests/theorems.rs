//! Cross-crate checks of the paper's theorems on realistic (trained)
//! networks, not just the toy running example.

use prdnn::core::DecoupledNetwork;
use prdnn::datasets::{acas, digits};
use prdnn::linalg::approx_eq_slice;
use prdnn::syrenn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn theorem_4_4_on_a_trained_classifier() {
    // The DDNN (N, N) computes exactly the same function as N.
    let task = digits::digit_task(9, 150, 50);
    let ddnn = DecoupledNetwork::from_network(&task.network);
    for x in task.test.inputs.iter().take(40) {
        assert!(approx_eq_slice(
            &ddnn.forward(x),
            &task.network.forward(x),
            1e-9
        ));
    }
}

#[test]
fn theorem_4_5_exact_linearity_on_a_trained_classifier() {
    // On a *trained* network, the output after a large single-layer value
    // edit equals the base output plus Jacobian-times-delta exactly.
    let task = digits::digit_task(10, 150, 50);
    let ddnn = DecoupledNetwork::from_network(&task.network);
    let mut rng = StdRng::seed_from_u64(77);
    for layer in [1usize, 2usize] {
        let n = ddnn.value_network().layer(layer).num_params();
        let delta: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let x = task.test.inputs[0].clone();
        let base = ddnn.forward(&x);
        let jac = ddnn.value_param_jacobian(layer, &x, &x);
        let mut edited = ddnn.clone();
        edited.apply_value_delta(layer, &delta);
        let actual = edited.forward(&x);
        for o in 0..base.len() {
            let predicted: f64 = base[o] + (0..n).map(|p| jac[(o, p)] * delta[p]).sum::<f64>();
            assert!(
                (actual[o] - predicted).abs() < 1e-6,
                "layer {layer} output {o}"
            );
        }
    }
}

#[test]
fn theorem_4_6_linear_regions_survive_value_edits_on_acas() {
    // The linear regions of a 2-D slice (computed by SyReNN) are identical
    // before and after a value-channel edit: same region count, same
    // activation patterns at the interiors.
    let task = acas::acas_task(55, 600);
    let mut rng = StdRng::seed_from_u64(3);
    let slice = acas::random_phi8_slices(1, &mut rng).remove(0);
    let before = syrenn::plane_regions(&task.network, &slice.corners()).unwrap();

    let mut ddnn = DecoupledNetwork::from_network(&task.network);
    let last = task.network.num_layers() - 1;
    let n = ddnn.value_network().layer(last).num_params();
    let delta: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    ddnn.apply_value_delta(last, &delta);

    // The activation channel is untouched, so its regions are unchanged.
    let after = syrenn::plane_regions(ddnn.activation_network(), &slice.corners()).unwrap();
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(&after) {
        assert!(approx_eq_slice(&b.interior, &a.interior, 1e-9));
        assert_eq!(
            task.network.activation_pattern(&b.interior),
            ddnn.activation_network().activation_pattern(&a.interior)
        );
    }
}

#[test]
fn exact_line_matches_brute_force_sampling() {
    // Between consecutive breakpoints the trained network must be affine;
    // brute-force sampling cannot find any extra kink ExactLine missed.
    let task = digits::digit_task(12, 120, 40);
    let clean = task.train.inputs[0].clone();
    let foggy = prdnn::datasets::corruptions::fog(&clean, digits::SIDE, digits::SIDE, 0.7);
    let ts = syrenn::exact_line(&task.network, &clean, &foggy).unwrap();
    let point = |t: f64| -> Vec<f64> {
        clean
            .iter()
            .zip(&foggy)
            .map(|(c, f)| c + t * (f - c))
            .collect()
    };
    for w in ts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let fa = task.network.forward(&point(a));
        let fb = task.network.forward(&point(b));
        for k in 1..8 {
            let alpha = k as f64 / 8.0;
            let t = a + alpha * (b - a);
            let expected: Vec<f64> = fa
                .iter()
                .zip(&fb)
                .map(|(x, y)| x + alpha * (y - x))
                .collect();
            assert!(
                approx_eq_slice(&task.network.forward(&point(t)), &expected, 1e-6),
                "network is not affine inside a reported linear region"
            );
        }
    }
}
