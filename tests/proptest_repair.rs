//! Property-based tests of the repair algorithms on randomly generated
//! networks and specifications.

use prdnn::core::{
    repair_points, repair_polytopes, InputPolytope, OutputPolytope, PointSpec, PolytopeSpec,
    RepairConfig,
};
use prdnn::nn::{Activation, Network};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

fn random_relu_net(seed: u64, sizes: &[usize]) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::mlp(sizes, Activation::Relu, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Specifications built from achievable outputs (boxes around the
    /// network's own outputs, shifted within reach of a last-layer bias
    /// change) are always repairable, the repaired network satisfies them,
    /// and the delta is no larger than the obvious feasible fix.
    #[test]
    fn achievable_point_specs_are_repaired_minimally(
        seed in 0u64..500,
        shift in -0.5f64..0.5,
        num_points in 1usize..5,
    ) {
        let net = random_relu_net(seed, &[4, 10, 8, 3]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabc);
        let mut spec = PointSpec::new();
        for _ in 0..num_points {
            let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y = net.forward(&x);
            // Require output component 0 to move into [y0 + shift - 0.05, y0 + shift + 0.05]
            // while the others stay within +/- 1 of their current values.
            let lo: Vec<f64> = y.iter().enumerate()
                .map(|(i, v)| if i == 0 { v + shift - 0.05 } else { v - 1.0 }).collect();
            let hi: Vec<f64> = y.iter().enumerate()
                .map(|(i, v)| if i == 0 { v + shift + 0.05 } else { v + 1.0 }).collect();
            spec.push(x, OutputPolytope::interval(&lo, &hi));
        }
        // Shifting output 0 by `shift` is achievable by changing only the
        // last-layer bias of unit 0 by `shift`, so the repair is feasible and
        // its l1-minimal delta is at most |shift| per point... in fact at most
        // |shift| in total, because one bias change fixes every point.
        let outcome = repair_points(&net, 2, &spec, &RepairConfig::default())
            .expect("achievable spec must be repairable");
        prop_assert!(spec.is_satisfied_by(|x| outcome.repaired.forward(x), 1e-6));
        prop_assert!(outcome.stats.delta_l1 <= shift.abs() + 1e-6);
    }

    /// Polytope repair implies point repair: every sampled point of the
    /// repaired polytope satisfies the constraint.
    #[test]
    fn polytope_repair_holds_on_random_samples(seed in 0u64..300, label in 0usize..3) {
        let net = random_relu_net(seed.wrapping_add(1000), &[3, 8, 6, 3]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let start: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let end: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        prop_assume!(start.iter().zip(&end).any(|(a, b)| (a - b).abs() > 1e-6));
        let mut spec = PolytopeSpec::new();
        spec.push(
            InputPolytope::segment(start.clone(), end.clone()),
            OutputPolytope::classification(label, 3, 1e-4),
        );
        // Last-layer repair of a segment spec is almost always feasible; when
        // it is not, the algorithm must say so rather than return a bogus fix.
        match repair_polytopes(&net, 2, &spec, &RepairConfig::default()) {
            Ok(result) => {
                for i in 0..=50 {
                    let t = i as f64 / 50.0;
                    let p: Vec<f64> =
                        start.iter().zip(&end).map(|(s, e)| s + t * (e - s)).collect();
                    prop_assert_eq!(result.outcome.repaired.classify(&p), label);
                }
            }
            Err(e) => {
                prop_assert_eq!(e, prdnn::core::RepairError::Infeasible);
            }
        }
    }

    /// The repaired delta really is applied to a single layer: all other
    /// value-channel layers (and the whole activation channel) are unchanged.
    #[test]
    fn repair_only_touches_the_requested_layer(seed in 0u64..300) {
        let net = random_relu_net(seed.wrapping_add(5000), &[3, 6, 6, 2]);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x11);
        let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let spec = PointSpec::from_classification(&[x], &[1], 2, 1e-4);
        if let Ok(outcome) = repair_points(&net, 1, &spec, &RepairConfig::default()) {
            let repaired = &outcome.repaired;
            prop_assert_eq!(repaired.activation_network(), &net);
            for layer in [0usize, 2usize] {
                prop_assert_eq!(
                    repaired.value_network().layer(layer).params(),
                    net.layer(layer).params()
                );
            }
        }
    }
}
