//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest's API the workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`, range and collection
//! strategies, `prop_oneof!`/`Just`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assume!` macros.
//!
//! Cases are generated from a fixed-seed RNG, so failures are reproducible;
//! there is no shrinking — a failing case panics with the assertion message.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A source of random values of type `Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.sample(rng))
        }
    }

    /// A strategy that always yields a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, f32, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Boxes a strategy (used by `prop_oneof!` to mix strategy types).
    pub fn boxed<T, S: Strategy<Value = T> + 'static>(s: S) -> Box<dyn Strategy<Value = T>> {
        Box::new(s)
    }

    /// Uniform choice between several strategies with the same value type.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Lengths acceptable to [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait VecLen {
        /// Draws a concrete length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecLen for Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            rng.rng.gen_range(self.clone())
        }
    }

    /// Strategy generating vectors of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates `Vec`s with `len` elements drawn from `element`.
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// The RNG handed to strategies while generating a case.
    pub struct TestRng {
        pub(crate) rng: rand::rngs::StdRng,
    }

    impl TestRng {
        /// A deterministic RNG; every `proptest!` test starts from this seed,
        /// making failures reproducible.
        pub fn deterministic() -> Self {
            TestRng {
                rng: rand::rngs::StdRng::seed_from_u64(0x5eed_cafe_f00d_0001),
            }
        }
    }

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The `prop::` path used by idiomatic proptest code.
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for many randomly generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut prop_rng = $crate::test_runner::TestRng::deterministic();
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);)+
                // `prop_assume!` skips a case by returning from this closure.
                let mut case = || $body;
                case();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0..2.0f64, n in 1usize..9) {
            prop_assert!((-2.0..2.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(0.0..1.0f64, 5)) {
            prop_assert_eq!(v.len(), 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(0.0), 1.0..2.0f64]) {
            prop_assert!(x == 0.0 || (1.0..2.0).contains(&x));
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn tuple_and_prop_map() {
        let mut rng = crate::test_runner::TestRng::deterministic();
        let s = (0.0..1.0f64, 0usize..4).prop_map(|(a, b)| a + b as f64);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!((0.0..4.0).contains(&v));
        }
    }
}
