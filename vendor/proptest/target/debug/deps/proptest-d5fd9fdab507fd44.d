/root/repo/vendor/proptest/target/debug/deps/proptest-d5fd9fdab507fd44.d: src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/proptest-d5fd9fdab507fd44: src/lib.rs

src/lib.rs:
