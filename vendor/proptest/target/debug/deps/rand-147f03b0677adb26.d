/root/repo/vendor/proptest/target/debug/deps/rand-147f03b0677adb26.d: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/librand-147f03b0677adb26.rlib: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/proptest/target/debug/deps/librand-147f03b0677adb26.rmeta: /root/repo/vendor/rand/src/lib.rs

/root/repo/vendor/rand/src/lib.rs:
