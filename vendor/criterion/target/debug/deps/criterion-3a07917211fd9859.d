/root/repo/vendor/criterion/target/debug/deps/criterion-3a07917211fd9859.d: src/lib.rs

/root/repo/vendor/criterion/target/debug/deps/criterion-3a07917211fd9859: src/lib.rs

src/lib.rs:
