//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion's API the workspace's benches use:
//! [`Criterion`] with `bench_function` / `benchmark_group`, builder-style
//! `sample_size` / `measurement_time` / `warm_up_time`, [`BenchmarkId`], the
//! [`criterion_group!`] / [`criterion_main!`] macros, and [`black_box`].
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then runs
//! `sample_size` samples for roughly `measurement_time` total and reports the
//! per-iteration mean, median, and min wall-clock times on stdout.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of a parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    /// Measures `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || iters_done == 0 {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed() / iters_done.max(1) as u32;

        // Choose iterations per sample so all samples fit the time budget.
        let per_sample_budget = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1
        } else {
            (per_sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32
        };

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample);
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

fn run_bench(settings: Settings, name: &str, f: &mut dyn FnMut(&mut Bencher<'_>)) {
    let mut samples: Vec<Duration> = Vec::new();
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_size: settings.sample_size,
        measurement_time: settings.measurement_time,
        warm_up_time: settings.warm_up_time,
    };
    f(&mut bencher);
    samples.sort_unstable();
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!(
        "{name:<48} time: [min {} median {} mean {}]",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.settings.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.settings.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        run_bench(self.settings, name, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        run_bench(self.settings, &format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            self.settings,
            &format!("{}/{}", self.name, id.id),
            &mut |b| f(b, input),
        );
        self
    }

    /// Finishes the group (output is already flushed; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(2))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        fast_criterion().bench_function("counting", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = fast_criterion();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let input = 21u64;
        group.bench_with_input(BenchmarkId::from_parameter(input), &input, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_with_input(BenchmarkId::new("doubling", input), &input, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(5)), "5 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(1)), "1.000 s");
    }
}
