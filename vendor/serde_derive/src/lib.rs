//! Offline stand-in for `serde_derive`.
//!
//! The vendored `serde` crate's `Serialize` / `Deserialize` are marker
//! traits, so the derives only need to emit empty impls for the annotated
//! type.  Implemented directly on `proc_macro` (no `syn`/`quote`, which are
//! unavailable offline).  Generic types are not supported — nothing in this
//! workspace derives serde traits on a generic type.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the `struct`/`enum` a derive was applied to and
/// asserts it has no generic parameters.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let word = ident.to_string();
            if word == "struct" || word == "enum" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde derive: expected a type name, found {other:?}"),
                };
                if matches!(tokens.next(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    panic!("vendored serde derive does not support generic type `{name}`");
                }
                return name;
            }
        }
    }
    panic!("serde derive: no struct or enum found in input");
}

/// Derives the vendored marker trait `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derives the vendored marker trait `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
