//! A small JSON document model with an exact-round-trip writer and a
//! recursive-descent parser.
//!
//! The real `serde` ecosystem would pair `serde` with `serde_json`; offline,
//! this module supplies the subset the workspace's serving layer and bench
//! reports need:
//!
//! * [`Value`] — the usual JSON tree (null / bool / number / string / array
//!   / object).  Objects preserve insertion order, which keeps emitted
//!   protocol frames and bench reports stable and diffable.
//! * [`Value::to_json`] — compact writer.  Finite numbers are formatted with
//!   Rust's shortest-round-trip `{:?}` representation, so an `f64` survives
//!   a write→parse cycle **bit for bit** (the serving layer's bit-identical
//!   guarantee relies on this).  Non-finite numbers have no JSON form and
//!   are emitted as `null`.
//! * [`Value::parse`] — parser with a nesting-depth limit, rejecting
//!   trailing garbage, unterminated strings, and malformed escapes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts; deeper documents are rejected
/// instead of overflowing the stack on untrusted input.
const MAX_DEPTH: usize = 128;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; JSON does not distinguish integer from float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

/// A malformed JSON document, with a byte offset and description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Value {
    /// Builds an object value from key/value pairs, in the given order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds an array of numbers from an `f64` slice.
    pub fn num_array(xs: &[f64]) -> Value {
        Value::Arr(xs.iter().map(|&x| Value::Num(x)).collect())
    }

    /// Looks up a key in an object value (`None` for non-objects and
    /// missing keys; first match wins if a key is duplicated).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number that is one.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an `f64` vector, if it is an array of numbers.
    pub fn as_f64_vec(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Value::as_f64).collect()
    }

    /// Serialises the value as compact JSON.
    ///
    /// Finite numbers use the shortest representation that parses back to
    /// the identical bits; NaN and infinities become `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest round-trip f64 formatting;
                    // its output ("1.0", "-0.0", "1e300") is valid JSON.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document, rejecting trailing non-whitespace.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] describing the first offending byte.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{keyword}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            _ => Err(self.err(format!("invalid number '{text}'"))),
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = match code {
                                // High surrogate: standard JSON encoders
                                // (e.g. Python's json with ensure_ascii)
                                // emit non-BMP characters as a \u pair —
                                // combine it with the following low half.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 1) != Some(&b'u')
                                    {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                }
                                0xDC00..=0xDFFF => return Err(self.err("unpaired low surrogate")),
                                code => char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Sorts every object's keys recursively (useful when comparing documents
/// produced with different insertion orders).
pub fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Arr(items) => Value::Arr(items.iter().map(canonicalize).collect()),
        Value::Obj(pairs) => {
            let sorted: BTreeMap<&str, Value> = pairs
                .iter()
                .map(|(k, v)| (k.as_str(), canonicalize(v)))
                .collect();
            Value::Obj(sorted.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for doc in ["null", "true", "false", "0.0", "-1.5", "\"hi\""] {
            let v = Value::parse(doc).unwrap();
            assert_eq!(v.to_json(), doc);
        }
    }

    #[test]
    fn f64_round_trips_bit_for_bit() {
        let values = [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            9007199254740993.0,
            0.1 + 0.2,
        ];
        for &x in &values {
            let json = Value::Num(x).to_json();
            let back = Value::parse(&json).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "value {x:?} via {json}");
        }
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn nested_structures_round_trip() {
        let doc = r#"{"a":[1.0,2.5,{"b":null}],"c":"x\"y\\z","d":{"e":[[]]}}"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(v.to_json(), doc);
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "x\"y\\z");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn whitespace_and_escapes_are_accepted() {
        let v = Value::parse(" { \"k\" : [ 1 , 2 ] ,\n\"s\": \"\\u0041\\n\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_f64_vec().unwrap(), vec![1.0, 2.0]);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "A\n");
    }

    #[test]
    fn surrogate_pairs_combine_like_standard_encoders() {
        // Python's `json.dumps("😀")` with its ensure_ascii default
        // emits an escaped surrogate pair.
        let v = Value::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        let v = Value::parse(r#""a\ud83d\ude00b\u0041""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a😀bA");
        // Literal (unescaped) non-BMP characters still pass through.
        let v = Value::parse("\"😀\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        for bad in [
            r#""\ud83d""#,   // unpaired high at end of string
            r#""\ud83dxx""#, // high not followed by an escape
            r#""\ud83dA""#,  // high followed by a non-surrogate
            r#""\ude00""#,   // lone low
        ] {
            assert!(Value::parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for doc in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "truth",
            "1.0extra",
            "{\"a\":}",
            "[1] []",
            "nul",
            "{\"a\" 1}",
            "\"\\q\"",
            "nan",
        ] {
            assert!(Value::parse(doc).is_err(), "accepted {doc:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Value::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Value::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_and_builders() {
        let v = Value::obj([
            ("n", Value::Num(3.0)),
            ("xs", Value::num_array(&[1.0, 2.0])),
            ("flag", Value::Bool(true)),
        ]);
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(Value::Num(-1.0).as_usize(), None);
        assert_eq!(Value::Num(1.5).as_usize(), None);
        assert_eq!(v.get("xs").unwrap().as_f64_vec().unwrap(), vec![1.0, 2.0]);
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.get("k").is_none());
    }

    #[test]
    fn canonicalize_sorts_keys() {
        let a = Value::parse(r#"{"b":1.0,"a":{"z":2.0,"y":3.0}}"#).unwrap();
        let b = Value::parse(r#"{"a":{"y":3.0,"z":2.0},"b":1.0}"#).unwrap();
        assert_eq!(canonicalize(&a), canonicalize(&b));
    }
}
