//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize` / `Deserialize` on its model types so a
//! real serialisation backend can be slotted in later, but no code path
//! actually serialises anything yet.  Since crates.io is unreachable in this
//! build environment, this vendored crate supplies the two trait names as
//! markers together with derive macros that emit empty impls, keeping the
//! annotations compiling until a full serde can be used.

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of `serde::Serialize`.
pub trait Serialize {}

/// Marker form of `serde::Deserialize`.
pub trait Deserialize<'de> {}
