//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize` / `Deserialize` on its model types so a
//! real serialisation backend can be slotted in later.  Since crates.io is
//! unreachable in this build environment, this vendored crate supplies the
//! two trait names as markers together with derive macros that emit empty
//! impls, keeping the annotations compiling until a full serde can be used.
//!
//! The [`json`] module is the working part: a small JSON document model with
//! an exact-round-trip writer and a hardened parser, standing in for
//! `serde_json`.  The serving layer's wire protocol, the model store's
//! file format, and the bench JSON reports are all built on it.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Marker form of `serde::Serialize`.
pub trait Serialize {}

/// Marker form of `serde::Deserialize`.
pub trait Deserialize<'de> {}
