//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the `rand 0.8` API surface the workspace
//! uses: [`Rng::gen_range`] / [`Rng::gen_bool`] over the usual numeric range
//! types, [`SeedableRng::seed_from_u64`], a deterministic [`rngs::StdRng`]
//! (xoshiro256++), [`rngs::mock::StepRng`], and [`seq::SliceRandom::shuffle`].
//!
//! The streams differ from upstream `rand`, but every consumer in this
//! workspace only relies on determinism-for-a-seed, not on the exact values.

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)` (`[low, high]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// One blanket impl per range type (mirroring upstream `rand`) keeps the
/// element type uniquely determined by the range, so integer/float literal
/// fallback works in expressions like `x + rng.gen_range(0..2)`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_uniform(rng, start, end, true)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64, _incl: bool) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32, _incl: bool) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        low + unit * (high - low)
    }
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "gen_range: empty range");
    // Widening-multiply rejection sampling (Lemire); bias-free.
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128).wrapping_mul(bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = (high as i128 - low as i128 + if inclusive { 1 } else { 0 }) as u64;
                low.wrapping_add(sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Convenience methods layered on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG by expanding a `u64` with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic, seedable RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Mock RNGs for deterministic tests.
    pub mod mock {
        use super::super::RngCore;

        /// An RNG yielding `initial`, `initial + increment`, ... — mirrors
        /// `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a new `StepRng`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.value;
                self.value = self.value.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (`shuffle`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2000 {
            let f = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
            let i = rng.gen_range(-1isize..=1);
            assert!((-1..=1).contains(&i));
        }
    }

    #[test]
    fn gen_range_covers_small_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(rng.gen_range(-1isize..=1) + 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(42, 13);
        assert_eq!(rng.next_u64(), 42);
        assert_eq!(rng.next_u64(), 55);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn dyn_rng_core_object_is_usable() {
        let mut rng = StdRng::seed_from_u64(11);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen_range(0.0..1.0f64);
        assert!((0.0..1.0).contains(&x));
    }
}
